"""Permission-probability gating of request transmissions.

Section 2 of the paper: to avoid excessive collisions, a device with packets
awaiting transmission only attempts to send a request in a given minislot
with a certain *permission probability* — ``p_v`` for voice and ``p_d`` for
data requests.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.packets import TrafficKind

__all__ = ["PermissionPolicy"]


class PermissionPolicy:
    """Bernoulli gating of contention attempts by service class.

    Parameters
    ----------
    voice_probability:
        Permission probability ``p_v`` in ``(0, 1]``.
    data_probability:
        Permission probability ``p_d`` in ``(0, 1]``.
    rng:
        Random generator for the Bernoulli draws.
    """

    def __init__(
        self,
        voice_probability: float,
        data_probability: float,
        rng: np.random.Generator,
    ) -> None:
        for name, value in (("voice_probability", voice_probability),
                            ("data_probability", data_probability)):
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {value}")
        self._pv = float(voice_probability)
        self._pd = float(data_probability)
        self._rng = rng

    @property
    def voice_probability(self) -> float:
        """Permission probability for voice requests."""
        return self._pv

    @property
    def data_probability(self) -> float:
        """Permission probability for data requests."""
        return self._pd

    def probability_for(self, kind: TrafficKind) -> float:
        """Permission probability applicable to the given service class."""
        return self._pv if kind.is_voice else self._pd

    def permits(self, kind: TrafficKind) -> bool:
        """Draw whether a device of the given class may contend right now."""
        return bool(self._rng.random() < self.probability_for(kind))

    def permits_many(self, probabilities: np.ndarray) -> np.ndarray:
        """Draw one permission per entry of a per-device probability vector.

        Consumes the random stream exactly as the equivalent sequence of
        :meth:`permits` calls would (``Generator.random`` fills arrays from
        the bit stream element by element), so batched and scalar contention
        resolution stay bit-identical.
        """
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.size == 0:
            return np.zeros(0, dtype=bool)
        return self._rng.random(size=probabilities.shape[0]) < probabilities
