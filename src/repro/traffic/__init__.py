"""Traffic substrate: voice/data sources, packets, terminals and contention gating.

The paper's system model (Section 2) has exactly two request types:

* **voice** — an on/off source alternating between exponentially distributed
  talkspurts (mean 1.0 s) and silences (mean 1.35 s); during a talkspurt one
  delay-sensitive packet is produced every 20 ms and must be transmitted
  within 20 ms or be dropped;
* **data** — file transfers arriving as bursts with exponentially distributed
  inter-arrival times (mean 1 s) and exponentially distributed sizes (mean
  100 packets); data packets are delay-insensitive and are never dropped at
  the sender, only delayed (and retransmitted on channel error).

Requests are submitted in contention minislots gated by permission
probabilities ``p_v`` / ``p_d``.

Public classes
--------------
:class:`~repro.traffic.packets.Packet` and :class:`~repro.traffic.packets.TrafficKind`
    The unit of transmission and its service class.
:class:`~repro.traffic.voice.VoiceSource` / :class:`~repro.traffic.data.DataSource`
    Frame-synchronous packet generators.
:class:`~repro.traffic.terminal.Terminal`, ``VoiceTerminal``, ``DataTerminal``
    A mobile device: source + transmit buffer + per-terminal statistics.
:class:`~repro.traffic.permission.PermissionPolicy`
    The ``p_v`` / ``p_d`` gating of request transmissions.
:func:`~repro.traffic.generator.build_population`
    Factory creating the mixed voice/data terminal population of a scenario.
:class:`~repro.traffic.population.TerminalPopulation`
    Struct-of-arrays population state driving the columnar engine backend
    (with :class:`~repro.traffic.population.TerminalView` per-index views).
"""

from repro.traffic.data import DataSource
from repro.traffic.generator import build_population
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.permission import PermissionPolicy
from repro.traffic.population import TerminalPopulation, TerminalView, TerminalViews
from repro.traffic.terminal import DataTerminal, Terminal, TerminalStats, VoiceTerminal
from repro.traffic.voice import VoiceActivity, VoiceSource

__all__ = [
    "DataSource",
    "DataTerminal",
    "Packet",
    "PermissionPolicy",
    "Terminal",
    "TerminalPopulation",
    "TerminalStats",
    "TerminalView",
    "TerminalViews",
    "TrafficKind",
    "VoiceActivity",
    "VoiceSource",
    "VoiceTerminal",
    "build_population",
]
