"""Population factory for mixed voice/data scenarios."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import SimulationParameters
from repro.traffic.terminal import DataTerminal, Terminal, VoiceTerminal

__all__ = ["build_population"]


def build_population(
    params: SimulationParameters,
    n_voice: int,
    n_data: int,
    rng: np.random.Generator,
) -> List[Terminal]:
    """Create the terminal population of a scenario.

    Voice terminals occupy indices ``0 .. n_voice-1`` and data terminals the
    following ``n_data`` indices, so a terminal's id doubles as its row in the
    :class:`~repro.channel.manager.ChannelManager`.

    Every voice terminal starts in a *silence* period of random (exponential)
    length.  Starting part of the population mid-talkspurt would make all of
    those calls contend for a reservation in the very first frames — a
    synchronised cold-start burst that no contention-based protocol (nor a
    real cell, where calls begin at random times) ever faces — so instead the
    population ramps up naturally during the warm-up period as silences end.
    """
    if n_voice < 0 or n_data < 0:
        raise ValueError("population sizes must be non-negative")
    terminals: List[Terminal] = []
    for i in range(n_voice):
        terminals.append(VoiceTerminal(i, params, rng, start_silent=True))
    for j in range(n_data):
        terminals.append(DataTerminal(n_voice + j, params, rng))
    return terminals
