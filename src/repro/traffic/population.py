"""Struct-of-arrays terminal population for the columnar engine backend.

The object backend walks one Python :class:`~repro.traffic.terminal.Terminal`
per user per 2.5 ms frame, which dominates the run time at paper scale
(tens of thousands of frames x up to ~200 terminals x six protocols).
:class:`TerminalPopulation` keeps the whole population's traffic state in
NumPy arrays — buffer occupancy, head-of-line created frames, talkspurt and
burst countdowns, per-kind outcome counters — and advances it with a handful
of vectorised operations per frame, looping in Python only over the rare
*events* of a frame (talkspurt toggles, burst arrivals, deadline expiries,
grants).

RNG-stream compatibility
------------------------
The population draws from the same ``traffic`` stream as the object
population, in exactly the same order:

* construction draws one exponential per voice terminal (initial silence)
  followed by one per data terminal (initial inter-arrival), like
  :func:`~repro.traffic.generator.build_population`;
* :meth:`advance_frame` draws scalar exponentials only for the terminals
  whose state toggles this frame, in ascending terminal-id order — the same
  order in which the engine's object loop would reach them (voice ids always
  precede data ids).

Because of this the columnar backend is *bit-identical* to the object
backend under a common seed; the differential tests in
``tests/sim/test_backend_parity.py`` assert exactly that.

MAC protocols keep working unchanged: :class:`TerminalView` is a thin
per-index view exposing the read API of :class:`Terminal` (occupancy, head
deadlines, talkspurt state, statistics) backed by the arrays, and
:class:`TerminalViews` is the sequence of views the engine hands to
``protocol.run_frame``.  Its ``population`` attribute is the capability flag
the MAC layer's vectorised fast paths key on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional, Sequence

import numpy as np

from repro.config import SimulationParameters
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.terminal import TerminalStats

__all__ = ["TerminalPopulation", "TerminalView", "TerminalViews"]


class TerminalPopulation:
    """Columnar (struct-of-arrays) state of a whole terminal population.

    Voice terminals occupy indices ``0 .. n_voice-1`` and data terminals the
    following ``n_data`` indices, so a terminal's id doubles as its row in
    every array and in the :class:`~repro.channel.manager.ChannelManager` —
    the same dense layout :func:`~repro.traffic.generator.build_population`
    produces.

    Parameters
    ----------
    params:
        Shared simulation parameters.
    n_voice, n_data:
        Population sizes per service class.
    rng:
        The run's ``traffic`` random stream (shared with the object
        population; the draw order is identical, see the module docstring).
    """

    def __init__(
        self,
        params: SimulationParameters,
        n_voice: int,
        n_data: int,
        rng: np.random.Generator,
        rng_mode: str = "parity",
        toggle_rng: Optional[np.random.Generator] = None,
        burst_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_voice < 0 or n_data < 0:
            raise ValueError("population sizes must be non-negative")
        if rng_mode not in ("parity", "fast"):
            raise ValueError(f"rng_mode must be 'parity' or 'fast', got {rng_mode!r}")
        self.params = params
        self._rng = rng
        # Fast RNG mode batches each frame's event draws (talkspurt/silence
        # toggles, burst arrivals) into single calls against dedicated child
        # streams; parity mode replays the object backend's scalar draw
        # order from the shared traffic stream.  Construction draws always
        # come from the shared stream, so the initial population state is
        # identical in both modes.
        self._rng_fast = rng_mode == "fast"
        if self._rng_fast:
            self._toggle_rng = toggle_rng if toggle_rng is not None else rng.spawn(1)[0]
            self._burst_rng = burst_rng if burst_rng is not None else rng.spawn(1)[0]
        else:
            self._toggle_rng = self._burst_rng = None
        self.n_voice = int(n_voice)
        self.n_data = int(n_data)
        n = self.n_voice + self.n_data
        self._n = n
        self._dt = params.frame_duration_s
        self._period = params.frames_per_voice_period
        self._deadline = params.voice_deadline_frames

        self.is_voice = np.zeros(n, dtype=bool)
        self.is_voice[: self.n_voice] = True
        self.is_data_mask = ~self.is_voice

        # Talkspurt/burst state machines (columnar mirror of Voice/DataSource).
        # ``countdown`` unifies the two per-terminal timers — frames to the
        # next talkspurt/silence toggle for voice rows, frames to the next
        # burst arrival for data rows — so one vector compare per frame
        # finds every source event.
        self.in_talkspurt = np.zeros(n, dtype=bool)
        self.countdown = np.zeros(n, dtype=np.int64)
        self.frames_since_packet = np.zeros(n, dtype=np.int64)
        # Talkspurt-start events are stamped with their frame instead of a
        # per-frame boolean reset: view.talkspurt_started() compares against
        # the frame most recently advanced.
        self._talkspurt_started_frame = np.full(n, -2, dtype=np.int64)
        self._current_frame = -1

        # Transmit buffers: occupancy + head-of-line created frame per
        # terminal, with the full FIFO content as (created_frame, count)
        # segments — one segment per voice packet, one per data burst — so
        # the per-frame cost is O(events), not O(packets).
        self.occupancy = np.zeros(n, dtype=np.int64)
        self.head_created = np.full(n, -1, dtype=np.int64)
        self._segments: List[Deque[List[int]]] = [deque() for _ in range(n)]

        # Per-terminal outcome counters (the columnar TerminalStats).
        self.voice_generated = np.zeros(n, dtype=np.int64)
        self.voice_delivered = np.zeros(n, dtype=np.int64)
        self.voice_errored = np.zeros(n, dtype=np.int64)
        self.voice_dropped = np.zeros(n, dtype=np.int64)
        self.data_generated = np.zeros(n, dtype=np.int64)
        self.data_delivered = np.zeros(n, dtype=np.int64)
        self.data_retransmissions = np.zeros(n, dtype=np.int64)
        self._data_delays: List[List[int]] = [[] for _ in range(n)]

        self._measure_from = 0
        self._voice_loss_total = 0

        # Initial state draws, in build_population order: every voice
        # terminal starts in a silence period of random exponential length,
        # every data terminal draws its first burst inter-arrival.
        mean_silence = params.mean_silence_s
        for i in range(self.n_voice):
            self.countdown[i] = self._duration_frames(rng.exponential(mean_silence))
        mean_arrival = params.mean_data_interarrival_s
        for j in range(self.n_voice, n):
            self.countdown[j] = self._duration_frames(rng.exponential(mean_arrival))

        self.views = TerminalViews(self)

    # ------------------------------------------------------------------ API
    def __len__(self) -> int:
        return self._n

    @property
    def n_terminals(self) -> int:
        """Total number of terminals."""
        return self._n

    @property
    def voice_loss_total(self) -> int:
        """Running total of voice losses (dropped + errored) this window."""
        return self._voice_loss_total

    @property
    def measure_from_frame(self) -> int:
        """First frame of the current measurement window."""
        return self._measure_from

    # -------------------------------------------------------------- traffic
    def advance_frame(self, frame_index: int) -> None:
        """Generate traffic for one frame across the whole population.

        Vectorised counters, with scalar RNG draws only for the terminals
        whose on/off state toggles or whose burst arrives this frame — in
        ascending id order, matching the object backend's draw order.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        nv = self.n_voice
        params = self.params
        rng = self._rng
        self._current_frame = frame_index

        countdown = self.countdown
        events = countdown == 0
        # Terminals firing an event get a fresh duration below, so the
        # global decrement may briefly take them negative.
        countdown -= 1
        if events.any():
            if self._rng_fast:
                self._fire_events_fast(events, frame_index)
            else:
                # Ascending index order keeps the scalar draws in exactly
                # the object backend's per-terminal order (voice ids precede
                # data).
                for i in events.nonzero()[0]:
                    if i < nv:
                        if self.in_talkspurt[i]:
                            self.in_talkspurt[i] = False
                            duration = rng.exponential(params.mean_silence_s)
                        else:
                            self.in_talkspurt[i] = True
                            self._talkspurt_started_frame[i] = frame_index
                            self.frames_since_packet[i] = 0
                            duration = rng.exponential(params.mean_talkspurt_s)
                        countdown[i] = self._duration_frames(duration)
                    else:
                        size = max(
                            1,
                            int(round(rng.exponential(params.mean_data_burst_packets))),
                        )
                        countdown[i] = self._duration_frames(
                            rng.exponential(params.mean_data_interarrival_s)
                        )
                        self.data_generated[i] += size
                        self.occupancy[i] += size
                        self._segments[i].append([frame_index, size])
                        if self.head_created[i] < 0:
                            self.head_created[i] = frame_index

        if nv:
            talking = self.in_talkspurt[:nv]
            since = self.frames_since_packet[:nv]
            generating = talking & (since % self._period == 0)
            since += talking
            if generating.any():
                self.voice_generated[:nv] += generating
                self.occupancy[:nv] += generating
                for i in generating.nonzero()[0]:
                    self._segments[i].append([frame_index, 1])
                    if self.head_created[i] < 0:
                        self.head_created[i] = frame_index

    def _fire_events_fast(self, events: np.ndarray, frame_index: int) -> None:
        """Batched source-event draws (fast RNG mode).

        Identical state transitions to the parity loop, but the frame's
        draws collapse into one batched call per draw site — talkspurt and
        silence durations from the ``toggle`` child stream, burst sizes and
        inter-arrivals from the ``burst`` child stream — so the per-frame
        RNG cost no longer scales with the number of firing terminals.
        """
        params = self.params
        dt = self._dt
        countdown = self.countdown
        indices = events.nonzero()[0]
        nv = self.n_voice

        # One or two firing terminals (the common case: toggles and bursts
        # are second-scale events against 2.5 ms frames) are cheaper as
        # scalar draws from the same child streams — identically
        # distributed, just without the array fixed costs.
        if indices.shape[0] <= 2:
            for i in indices.tolist():
                if i < nv:
                    if self.in_talkspurt[i]:
                        self.in_talkspurt[i] = False
                        mean = params.mean_silence_s
                    else:
                        self.in_talkspurt[i] = True
                        self._talkspurt_started_frame[i] = frame_index
                        self.frames_since_packet[i] = 0
                        mean = params.mean_talkspurt_s
                    countdown[i] = self._duration_frames(
                        self._toggle_rng.exponential(mean)
                    )
                else:
                    size = max(
                        1,
                        int(round(
                            self._burst_rng.exponential(
                                params.mean_data_burst_packets
                            )
                        )),
                    )
                    countdown[i] = self._duration_frames(
                        self._burst_rng.exponential(
                            params.mean_data_interarrival_s
                        )
                    )
                    self.data_generated[i] += size
                    self.occupancy[i] += size
                    self._segments[i].append([frame_index, size])
                    if self.head_created[i] < 0:
                        self.head_created[i] = frame_index
            return

        voice_idx = indices[indices < nv]
        data_idx = indices[indices >= nv]

        if voice_idx.shape[0]:
            talking = self.in_talkspurt[voice_idx]
            means = np.where(
                talking, params.mean_silence_s, params.mean_talkspurt_s
            )
            durations = (
                self._toggle_rng.standard_exponential(voice_idx.shape[0]) * means
            )
            countdown[voice_idx] = np.maximum(
                1, np.round(durations / dt).astype(np.int64)
            )
            self.in_talkspurt[voice_idx] = ~talking
            starting = voice_idx[~talking]
            self._talkspurt_started_frame[starting] = frame_index
            self.frames_since_packet[starting] = 0

        if data_idx.shape[0]:
            k = data_idx.shape[0]
            sizes = np.maximum(
                1,
                np.round(
                    self._burst_rng.exponential(
                        params.mean_data_burst_packets, size=k
                    )
                ).astype(np.int64),
            )
            gaps = self._burst_rng.exponential(
                params.mean_data_interarrival_s, size=k
            )
            countdown[data_idx] = np.maximum(1, np.round(gaps / dt).astype(np.int64))
            self.data_generated[data_idx] += sizes
            self.occupancy[data_idx] += sizes
            head_created = self.head_created
            segments = self._segments
            for i, size in zip(data_idx.tolist(), sizes.tolist()):
                segments[i].append([frame_index, size])
                if head_created[i] < 0:
                    head_created[i] = frame_index

    def drop_expired(self, current_frame: int) -> int:
        """Drop buffered voice packets whose 20 ms deadline has passed.

        Returns the total number of packets removed; only in-window drops
        count towards the statistics, exactly like
        :meth:`Terminal.drop_expired`.
        """
        nv = self.n_voice
        if not nv:
            return 0
        heads = self.head_created[:nv]
        # head_created is -1 exactly when the buffer is empty, so a single
        # range test finds the expired heads.
        expired_mask = (heads >= 0) & (heads <= current_frame - self._deadline)
        if not expired_mask.any():
            return 0
        total = 0
        for i in expired_mask.nonzero()[0]:
            segments = self._segments[i]
            dropped = 0
            counted = 0
            while segments and segments[0][0] + self._deadline <= current_frame:
                created, count = segments.popleft()
                dropped += count
                if created >= self._measure_from:
                    counted += count
            self.occupancy[i] -= dropped
            self.head_created[i] = segments[0][0] if segments else -1
            if counted:
                self.voice_dropped[i] += counted
                self._voice_loss_total += counted
            total += dropped
        return total

    # --------------------------------------------------------- transmission
    def transmit(
        self, index: int, max_packets: int, n_delivered: int, current_frame: int
    ) -> int:
        """Record a transmission opportunity's outcome for one terminal.

        Mirrors :meth:`Terminal.transmit` exactly, including the measurement
        -window filtering of outcomes: voice pops every transmitted packet
        (errored ones are lost), data pops only the delivered ones and
        counts the rest as retransmissions.
        """
        if max_packets < 0:
            raise ValueError("max_packets must be non-negative")
        occupancy = int(self.occupancy[index])
        n_transmitted = min(max_packets, occupancy)
        if n_delivered < 0 or n_delivered > n_transmitted:
            raise ValueError("n_delivered must lie in [0, n_transmitted]")
        if n_transmitted == 0:
            return 0
        segments = self._segments[index]
        window = self._measure_from

        if self.is_voice[index]:
            delivered = 0
            errored = 0
            for position in range(n_transmitted):
                created, count = segments.popleft()
                if created < window:
                    continue
                if position < n_delivered:
                    delivered += count
                else:
                    errored += count
            self.occupancy[index] -= n_transmitted
            self.head_created[index] = segments[0][0] if segments else -1
            if delivered:
                self.voice_delivered[index] += delivered
            if errored:
                self.voice_errored[index] += errored
                self._voice_loss_total += errored
            return n_transmitted

        remaining = n_delivered
        delays = self._data_delays[index]
        while remaining:
            segment = segments[0]
            created, count = segment
            take = min(remaining, count)
            if created >= window:
                self.data_delivered[index] += take
                delay = max(0, current_frame - created)
                delays.extend([delay] * take)
            if take == count:
                segments.popleft()
            else:
                segment[1] = count - take
            remaining -= take
        self.occupancy[index] -= n_delivered
        self.head_created[index] = segments[0][0] if segments else -1
        self.data_retransmissions[index] += n_transmitted - n_delivered
        return n_delivered

    def apply_grants(
        self, indices, capacities, delivered_counts, current_frame: int
    ) -> int:
        """Apply one executed batch of grants; return delivered data packets.

        Equivalent to calling :meth:`transmit` per grant (same order, same
        accounting); consolidated so the engine's hot loop crosses the
        population boundary once per batch instead of once per grant.
        """
        data_delivered = 0
        voice = self.is_voice
        for index, capacity, n_delivered in zip(indices, capacities, delivered_counts):
            n_ok = int(n_delivered)
            taken = self.transmit(
                index, max_packets=capacity, n_delivered=n_ok,
                current_frame=current_frame,
            )
            if not voice[index]:
                data_delivered += n_ok
            if taken > capacity:
                raise AssertionError("terminal consumed more packets than granted")
        return data_delivered

    # ------------------------------------------------------------ accounting
    def begin_measurement(self, frame_index: int) -> None:
        """Start a fresh measurement window at ``frame_index``.

        Zeroes every outcome counter and excludes packets created before the
        window from all future outcome accounting — the PR-2 epoch-tagging
        semantics (``delivered + errored + dropped <= generated``) carried
        over to array counters.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        for array in (
            self.voice_generated,
            self.voice_delivered,
            self.voice_errored,
            self.voice_dropped,
            self.data_generated,
            self.data_delivered,
            self.data_retransmissions,
        ):
            array[:] = 0
        self._data_delays = [[] for _ in range(self._n)]
        self._measure_from = int(frame_index)
        self._voice_loss_total = 0

    # ------------------------------------------------------------- plumbing
    def data_delays(self, index: int) -> List[int]:
        """Access delays (frames) of the terminal's delivered data packets."""
        return self._data_delays[index]

    def all_data_delays(self) -> List[int]:
        """Every recorded data access delay, in terminal-id order."""
        merged: List[int] = []
        for index in range(self.n_voice, self._n):
            merged.extend(self._data_delays[index])
        return merged

    def stats_of(self, index: int) -> TerminalStats:
        """Materialise one terminal's counters as a :class:`TerminalStats`."""
        return TerminalStats(
            voice_generated=int(self.voice_generated[index]),
            voice_delivered=int(self.voice_delivered[index]),
            voice_errored=int(self.voice_errored[index]),
            voice_dropped=int(self.voice_dropped[index]),
            data_generated=int(self.data_generated[index]),
            data_delivered=int(self.data_delivered[index]),
            data_retransmissions=int(self.data_retransmissions[index]),
            data_delay_frames=list(self._data_delays[index]),
        )

    def packets_of(self, index: int, n: Optional[int] = None) -> List[Packet]:
        """Materialise (a prefix of) a terminal's buffer as packet objects.

        The synthesised packets carry fresh debug sequence numbers; their
        kind, creation frame and deadline match the buffered state.
        """
        kind = TrafficKind.VOICE if self.is_voice[index] else TrafficKind.DATA
        packets: List[Packet] = []
        budget = int(self.occupancy[index]) if n is None else max(0, int(n))
        for created, count in self._segments[index]:
            for _ in range(min(count, budget - len(packets))):
                packets.append(
                    Packet(
                        kind=kind,
                        terminal_id=index,
                        created_frame=int(created),
                        deadline_frame=(
                            int(created) + self._deadline if kind.is_voice else None
                        ),
                    )
                )
            if len(packets) >= budget:
                break
        return packets

    def _duration_frames(self, duration_s: float) -> int:
        return max(1, int(round(duration_s / self._dt)))


class TerminalView:
    """Thin per-index read/transmit view over a :class:`TerminalPopulation`.

    Exposes the :class:`~repro.traffic.terminal.Terminal` API the MAC layer
    and the engine consume, backed by the population arrays.  State advance
    must go through the population's vectorised kernels (advancing a single
    view would reorder the shared RNG stream), so :meth:`advance_frame` and
    :meth:`drop_expired` raise.
    """

    __slots__ = ("population", "_index", "kind", "is_voice", "is_data")

    def __init__(self, population: TerminalPopulation, index: int) -> None:
        self.population = population
        self._index = int(index)
        # The service class is immutable, so it is cached as plain Python
        # attributes — the MAC layer reads these in per-candidate loops.
        self.is_voice = bool(population.is_voice[self._index])
        self.is_data = not self.is_voice
        self.kind = TrafficKind.VOICE if self.is_voice else TrafficKind.DATA

    # ------------------------------------------------------------------ API
    @property
    def terminal_id(self) -> int:
        """Population index of this device (dense, equals the array row)."""
        return self._index

    @property
    def buffer_occupancy(self) -> int:
        """Number of packets awaiting transmission."""
        return int(self.population.occupancy[self._index])

    @property
    def has_pending_packets(self) -> bool:
        """Whether at least one packet awaits transmission."""
        return self.population.occupancy[self._index] > 0

    @property
    def in_talkspurt(self) -> bool:
        """Whether the device is currently in a talkspurt (False for data)."""
        return bool(self.population.in_talkspurt[self._index])

    def talkspurt_started(self) -> bool:
        """Whether a new talkspurt began at the latest frame boundary."""
        population = self.population
        return bool(
            population._talkspurt_started_frame[self._index]
            == population._current_frame
        )

    @property
    def stats(self) -> TerminalStats:
        """Snapshot of this terminal's counters (materialised on access)."""
        return self.population.stats_of(self._index)

    def peek_packets(self, n: int) -> List[Packet]:
        """Materialise (without removing) the first ``n`` buffered packets."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.population.packets_of(self._index, n)

    def head_deadline_frames(self, current_frame: int) -> Optional[int]:
        """Frames to the head-of-line packet's deadline (None if no deadline)."""
        pop = self.population
        head = pop.head_created[self._index]
        if head < 0 or not pop.is_voice[self._index]:
            return None
        return max(0, int(head) + pop.params.voice_deadline_frames - current_frame)

    def head_waiting_frames(self, current_frame: int) -> int:
        """Frames the head-of-line packet has been waiting (0 if empty)."""
        head = self.population.head_created[self._index]
        if head < 0:
            return 0
        return max(0, current_frame - int(head))

    def transmit(self, max_packets: int, n_delivered: int, current_frame: int) -> int:
        """Record a transmission outcome (delegates to the population)."""
        return self.population.transmit(
            self._index, max_packets, n_delivered, current_frame
        )

    def begin_measurement(self, frame_index: int) -> None:
        """Unsupported per view: the window is population-wide."""
        raise RuntimeError(
            "begin_measurement is population-wide on the columnar backend; "
            "call TerminalPopulation.begin_measurement instead"
        )

    def advance_frame(self, frame_index: int) -> int:
        """Unsupported per view: advancing one terminal would desynchronise
        the shared traffic RNG stream — advance the TerminalPopulation."""
        raise RuntimeError(
            "advance the TerminalPopulation, not an individual TerminalView"
        )

    def drop_expired(self, current_frame: int) -> int:
        """Unsupported per view; use TerminalPopulation.drop_expired."""
        raise RuntimeError(
            "drop expired packets through TerminalPopulation.drop_expired"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TerminalView(id={self._index}, kind={self.kind.value}, "
            f"occupancy={self.buffer_occupancy})"
        )


class TerminalViews(Sequence):
    """Sequence of :class:`TerminalView` handed to ``protocol.run_frame``.

    Iteration order is ascending terminal id, matching the object backend's
    population list.  The ``population`` attribute (and ``dense_ids`` flag)
    let the MAC layer's fast paths swap per-object loops for array kernels.
    """

    #: Terminal ids are guaranteed dense 0..n-1 (id == sequence index).
    dense_ids = True

    def __init__(self, population: TerminalPopulation) -> None:
        self.population = population
        self._views = [TerminalView(population, i) for i in range(len(population))]

    def __len__(self) -> int:
        return len(self._views)

    def __getitem__(self, index):
        return self._views[index]

    def __iter__(self) -> Iterator[TerminalView]:
        return iter(self._views)
