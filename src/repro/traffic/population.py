"""Struct-of-arrays terminal population for the columnar engine backend.

The object backend walks one Python :class:`~repro.traffic.terminal.Terminal`
per user per 2.5 ms frame, which dominates the run time at paper scale
(tens of thousands of frames x up to ~200 terminals x six protocols).
:class:`TerminalPopulation` keeps the whole population's traffic state in
NumPy arrays — buffer occupancy, head-of-line created frames, talkspurt and
burst countdowns, per-kind outcome counters — and advances it with a handful
of vectorised operations per frame, looping in Python only over the rare
*events* of a frame (talkspurt toggles, burst arrivals, deadline expiries,
grants).

RNG-stream compatibility
------------------------
The population draws from the same ``traffic`` stream as the object
population, in exactly the same order:

* construction draws one exponential per voice terminal (initial silence)
  followed by one per data terminal (initial inter-arrival), like
  :func:`~repro.traffic.generator.build_population`;
* :meth:`advance_frame` draws scalar exponentials only for the terminals
  whose state toggles this frame, in ascending terminal-id order — the same
  order in which the engine's object loop would reach them (voice ids always
  precede data ids).

Because of this the columnar backend is *bit-identical* to the object
backend under a common seed; the differential tests in
``tests/sim/test_backend_parity.py`` assert exactly that.

MAC protocols keep working unchanged: :class:`TerminalView` is a thin
per-index view exposing the read API of :class:`Terminal` (occupancy, head
deadlines, talkspurt state, statistics) backed by the arrays, and
:class:`TerminalViews` is the sequence of views the engine hands to
``protocol.run_frame``.  Its ``population`` attribute is the capability flag
the MAC layer's vectorised fast paths key on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Optional, Sequence

import numpy as np

from repro.accel import (
    deadline_scan,
    next_expiry_bound,
    voice_flush_resolve,
    voice_generation_offsets,
)
from repro.config import SimulationParameters
from repro.lint.contracts import kernel
from repro.traffic.packets import Packet, TrafficKind
from repro.traffic.terminal import TerminalStats

__all__ = [
    "TerminalMigrationState",
    "TerminalPopulation",
    "TerminalView",
    "TerminalViews",
    "TrafficBlockPlan",
]

#: Sentinel for "no buffered voice packet can expire" (see ``drop_expired``).
_NO_DROP = 1 << 62


@dataclass
class TerminalMigrationState:
    """One terminal's complete traffic state, detached from its population.

    The handover currency of the multi-beam constellation layer:
    :meth:`TerminalPopulation.export_terminal_state` materialises a slot into
    one of these and :meth:`TerminalPopulation.import_terminal_state` installs
    it into a (same-service-class) slot of another population, carrying the
    source model phase, the buffered FIFO segments and every accumulated
    statistic across the shard boundary.  Export followed by import is
    conservation-exact: no packet, delay sample or outcome counter is lost or
    duplicated (asserted by ``tests/constellation/test_handover.py``).
    """

    is_voice: bool
    in_talkspurt: bool
    countdown: int
    frames_since_packet: int
    talkspurt_started_frame: int
    occupancy: int
    head_created: int
    segments: List[List[int]] = field(default_factory=list)
    voice_generated: int = 0
    voice_delivered: int = 0
    voice_errored: int = 0
    voice_dropped: int = 0
    data_generated: int = 0
    data_delivered: int = 0
    data_retransmissions: int = 0
    data_delays: List[int] = field(default_factory=list)


class TrafficBlockPlan:
    """Pre-drawn traffic evolution for a block of frames (macro stepping).

    :meth:`TerminalPopulation.plan_frames` consumes the traffic stream for a
    whole block up front — in exactly the per-frame draw order, so the
    realisation is bit-identical — and records each frame's *events* here:

    * ``toggles[offset]`` — ``(index, now_talking)`` talkspurt transitions;
    * ``bursts[offset]`` — ``(index, size)`` data-burst arrivals;
    * ``voice_gen[offset]`` — indices generating a voice packet.

    Entries are ``None`` when a frame has no event of that kind (the common
    case), so the macro engine's per-frame application is a few list checks.
    Buffer state (occupancy, segments, counters) is only touched when
    :meth:`TerminalPopulation.apply_planned_frame` replays the frame —
    keeping the arrays the MAC layer reads exact at every frame boundary.
    """

    __slots__ = ("start", "n_frames", "toggles", "bursts", "voice_gen")

    def __init__(self, start: int, n_frames: int) -> None:
        self.start = int(start)
        self.n_frames = int(n_frames)
        self.toggles: List[Optional[List]] = [None] * n_frames
        self.bursts: List[Optional[List]] = [None] * n_frames
        self.voice_gen: List[Optional[List]] = [None] * n_frames


class TerminalPopulation:
    """Columnar (struct-of-arrays) state of a whole terminal population.

    Voice terminals occupy indices ``0 .. n_voice-1`` and data terminals the
    following ``n_data`` indices, so a terminal's id doubles as its row in
    every array and in the :class:`~repro.channel.manager.ChannelManager` —
    the same dense layout :func:`~repro.traffic.generator.build_population`
    produces.

    Parameters
    ----------
    params:
        Shared simulation parameters.
    n_voice, n_data:
        Population sizes per service class.
    rng:
        The run's ``traffic`` random stream (shared with the object
        population; the draw order is identical, see the module docstring).
    """

    def __init__(
        self,
        params: SimulationParameters,
        n_voice: int,
        n_data: int,
        rng: np.random.Generator,
        rng_mode: str = "parity",
        toggle_rng: Optional[np.random.Generator] = None,
        burst_rng: Optional[np.random.Generator] = None,
        beam: Optional[int] = None,
    ) -> None:
        if n_voice < 0 or n_data < 0:
            raise ValueError("population sizes must be non-negative")
        if rng_mode not in ("parity", "fast"):
            raise ValueError(f"rng_mode must be 'parity' or 'fast', got {rng_mode!r}")
        self.params = params
        self._rng = rng
        # Fast RNG mode batches each frame's event draws (talkspurt/silence
        # toggles, burst arrivals) into single calls against dedicated child
        # streams; parity mode replays the object backend's scalar draw
        # order from the shared traffic stream.  Construction draws always
        # come from the shared stream, so the initial population state is
        # identical in both modes.
        self._rng_fast = rng_mode == "fast"
        if self._rng_fast:
            self._toggle_rng = toggle_rng if toggle_rng is not None else rng.spawn(1)[0]
            self._burst_rng = burst_rng if burst_rng is not None else rng.spawn(1)[0]
        else:
            self._toggle_rng = self._burst_rng = None
        #: Beam index when this population is one shard of a multi-beam
        #: constellation (``None`` for plain single-cell runs); indices are
        #: then *beam-local*, and error messages carry ``(beam, local_id)``.
        self.beam = None if beam is None else int(beam)
        self.n_voice = int(n_voice)
        self.n_data = int(n_data)
        n = self.n_voice + self.n_data
        self._n = n
        self._dt = params.frame_duration_s
        self._period = params.frames_per_voice_period
        self._deadline = params.voice_deadline_frames

        self.is_voice = np.zeros(n, dtype=bool)
        self.is_voice[: self.n_voice] = True
        self.is_data_mask = ~self.is_voice

        # Talkspurt/burst state machines (columnar mirror of Voice/DataSource).
        # ``countdown`` unifies the two per-terminal timers — frames to the
        # next talkspurt/silence toggle for voice rows, frames to the next
        # burst arrival for data rows — so one vector compare per frame
        # finds every source event.
        self.in_talkspurt = np.zeros(n, dtype=bool)
        self.countdown = np.zeros(n, dtype=np.int64)
        self.frames_since_packet = np.zeros(n, dtype=np.int64)
        # Talkspurt-start events are stamped with their frame instead of a
        # per-frame boolean reset: view.talkspurt_started() compares against
        # the frame most recently advanced.
        self._talkspurt_started_frame = np.full(n, -2, dtype=np.int64)
        self._current_frame = -1

        # Transmit buffers: occupancy + head-of-line created frame per
        # terminal, with the full FIFO content as (created_frame, count)
        # segments — one segment per voice packet, one per data burst — so
        # the per-frame cost is O(events), not O(packets).
        self.occupancy = np.zeros(n, dtype=np.int64)
        self.head_created = np.full(n, -1, dtype=np.int64)
        self._segments: List[Deque[List[int]]] = [deque() for _ in range(n)]

        # Per-terminal outcome counters (the columnar TerminalStats).
        self.voice_generated = np.zeros(n, dtype=np.int64)
        self.voice_delivered = np.zeros(n, dtype=np.int64)
        self.voice_errored = np.zeros(n, dtype=np.int64)
        self.voice_dropped = np.zeros(n, dtype=np.int64)
        self.data_generated = np.zeros(n, dtype=np.int64)
        self.data_delivered = np.zeros(n, dtype=np.int64)
        self.data_retransmissions = np.zeros(n, dtype=np.int64)
        self._data_delays: List[List[int]] = [[] for _ in range(n)]

        self._measure_from = 0
        self._voice_loss_total = 0
        # Earliest frame at which any buffered voice packet could expire
        # (lower bound): drop_expired returns immediately before it, so the
        # per-frame deadline scan costs nothing while no voice backlog ages.
        self._next_drop_frame = _NO_DROP

        # Initial state draws, in build_population order: every voice
        # terminal starts in a silence period of random exponential length,
        # every data terminal draws its first burst inter-arrival.
        mean_silence = params.mean_silence_s
        for i in range(self.n_voice):
            self.countdown[i] = self._duration_frames(rng.exponential(mean_silence))
        mean_arrival = params.mean_data_interarrival_s
        for j in range(self.n_voice, n):
            self.countdown[j] = self._duration_frames(rng.exponential(mean_arrival))

        self.views = TerminalViews(self)

    # ------------------------------------------------------------------ API
    def __len__(self) -> int:
        return self._n

    @property
    def n_terminals(self) -> int:
        """Total number of terminals."""
        return self._n

    @property
    def voice_loss_total(self) -> int:
        """Running total of voice losses (dropped + errored) this window."""
        return self._voice_loss_total

    @property
    def measure_from_frame(self) -> int:
        """First frame of the current measurement window."""
        return self._measure_from

    # -------------------------------------------------------------- traffic
    @kernel
    def advance_frame(self, frame_index: int) -> None:
        """Generate traffic for one frame across the whole population.

        Vectorised counters, with scalar RNG draws only for the terminals
        whose on/off state toggles or whose burst arrives this frame — in
        ascending id order, matching the object backend's draw order.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        nv = self.n_voice
        params = self.params
        rng = self._rng
        self._current_frame = frame_index

        countdown = self.countdown
        events = countdown == 0
        # Terminals firing an event get a fresh duration below, so the
        # global decrement may briefly take them negative.
        countdown -= 1
        if events.any():
            if self._rng_fast:
                self._fire_events_fast(events, frame_index)
            else:
                # Ascending index order keeps the scalar draws in exactly
                # the object backend's per-terminal order (voice ids precede
                # data).
                for i in events.nonzero()[0]:
                    if i < nv:
                        if self.in_talkspurt[i]:
                            self.in_talkspurt[i] = False
                            # Per-terminal draw order matches the object
                            # backend exactly (ascending index, voice
                            # before data).
                            # lint: allow[KRN001]
                            duration = rng.exponential(params.mean_silence_s)
                        else:
                            self.in_talkspurt[i] = True
                            self._talkspurt_started_frame[i] = frame_index
                            self.frames_since_packet[i] = 0
                            # Same parity-ordered gate as the silence
                            # branch above.
                            # lint: allow[KRN001]
                            duration = rng.exponential(params.mean_talkspurt_s)
                        countdown[i] = self._duration_frames(duration)
                    else:
                        size = max(
                            1,
                            # lint: allow[KRN001] -- parity-ordered draw
                            int(round(rng.exponential(params.mean_data_burst_packets))),
                        )
                        countdown[i] = self._duration_frames(
                            # lint: allow[KRN001] -- parity-ordered draw
                            rng.exponential(params.mean_data_interarrival_s)
                        )
                        self.data_generated[i] += size
                        self.occupancy[i] += size
                        self._segments[i].append([frame_index, size])
                        if self.head_created[i] < 0:
                            self.head_created[i] = frame_index

        if nv:
            talking = self.in_talkspurt[:nv]
            since = self.frames_since_packet[:nv]
            generating = talking & (since % self._period == 0)
            since += talking
            if generating.any():
                self.voice_generated[:nv] += generating
                self.occupancy[:nv] += generating
                for i in generating.nonzero()[0]:
                    self._segments[i].append([frame_index, 1])
                    if self.head_created[i] < 0:
                        self.head_created[i] = frame_index
                        if frame_index + self._deadline < self._next_drop_frame:
                            self._next_drop_frame = frame_index + self._deadline

    def _fire_events_fast(self, events: np.ndarray, frame_index: int) -> None:
        """Batched source-event draws (fast RNG mode).

        Identical state transitions to the parity loop, but the frame's
        draws collapse into one batched call per draw site — talkspurt and
        silence durations from the ``toggle`` child stream, burst sizes and
        inter-arrivals from the ``burst`` child stream — so the per-frame
        RNG cost no longer scales with the number of firing terminals.
        """
        params = self.params
        dt = self._dt
        countdown = self.countdown
        indices = events.nonzero()[0]
        nv = self.n_voice

        # One or two firing terminals (the common case: toggles and bursts
        # are second-scale events against 2.5 ms frames) are cheaper as
        # scalar draws from the same child streams — identically
        # distributed, just without the array fixed costs.
        if indices.shape[0] <= 2:
            for i in indices.tolist():
                if i < nv:
                    if self.in_talkspurt[i]:
                        self.in_talkspurt[i] = False
                        mean = params.mean_silence_s
                    else:
                        self.in_talkspurt[i] = True
                        self._talkspurt_started_frame[i] = frame_index
                        self.frames_since_packet[i] = 0
                        mean = params.mean_talkspurt_s
                    countdown[i] = self._duration_frames(
                        self._toggle_rng.exponential(mean)
                    )
                else:
                    size = max(
                        1,
                        int(round(
                            self._burst_rng.exponential(
                                params.mean_data_burst_packets
                            )
                        )),
                    )
                    countdown[i] = self._duration_frames(
                        self._burst_rng.exponential(
                            params.mean_data_interarrival_s
                        )
                    )
                    self.data_generated[i] += size
                    self.occupancy[i] += size
                    self._segments[i].append([frame_index, size])
                    if self.head_created[i] < 0:
                        self.head_created[i] = frame_index
            return

        voice_idx = indices[indices < nv]
        data_idx = indices[indices >= nv]

        if voice_idx.shape[0]:
            talking = self.in_talkspurt[voice_idx]
            means = np.where(
                talking, params.mean_silence_s, params.mean_talkspurt_s
            )
            durations = (
                self._toggle_rng.standard_exponential(voice_idx.shape[0]) * means
            )
            countdown[voice_idx] = np.maximum(
                1, np.round(durations / dt).astype(np.int64)
            )
            self.in_talkspurt[voice_idx] = ~talking
            starting = voice_idx[~talking]
            self._talkspurt_started_frame[starting] = frame_index
            self.frames_since_packet[starting] = 0

        if data_idx.shape[0]:
            k = data_idx.shape[0]
            sizes = np.maximum(
                1,
                np.round(
                    self._burst_rng.exponential(
                        params.mean_data_burst_packets, size=k
                    )
                ).astype(np.int64),
            )
            gaps = self._burst_rng.exponential(
                params.mean_data_interarrival_s, size=k
            )
            countdown[data_idx] = np.maximum(1, np.round(gaps / dt).astype(np.int64))
            self.data_generated[data_idx] += sizes
            self.occupancy[data_idx] += sizes
            head_created = self.head_created
            segments = self._segments
            for i, size in zip(data_idx.tolist(), sizes.tolist()):
                segments[i].append([frame_index, size])
                if head_created[i] < 0:
                    head_created[i] = frame_index

    # ------------------------------------------------------- macro stepping
    def plan_frames(self, start_frame: int, n_frames: int) -> TrafficBlockPlan:
        """Pre-draw a whole block's traffic evolution (macro stepping).

        Consumes the traffic stream for ``n_frames`` frames in **exactly**
        the order :meth:`advance_frame` would (event draws in ascending
        terminal-id order, frame by frame), so the planned realisation is
        bit-identical to per-frame advancing.  The talkspurt/burst counters
        (``countdown``, ``frames_since_packet``) are advanced to their
        end-of-block state here — nothing reads them mid-block — while
        everything the MAC layer observes per frame (``in_talkspurt``,
        buffers, outcome counters) is only mutated when
        :meth:`apply_planned_frame` replays each frame's recorded events.

        Event-free stretches are planned without per-frame work: the next
        source event is ``countdown.min()`` frames away, and the voice
        packets generated inside the gap follow deterministically from each
        talking terminal's phase counter.
        """
        if start_frame < 0:
            raise ValueError("start_frame must be non-negative")
        if n_frames < 1:
            raise ValueError("n_frames must be at least 1")
        plan = TrafficBlockPlan(start_frame, n_frames)
        n = self._n
        if n == 0:
            return plan
        nv = self.n_voice
        period = self._period
        params = self.params
        rng = self._rng
        fast = self._rng_fast
        countdown = self.countdown
        talking = set(np.nonzero(self.in_talkspurt[:nv])[0].tolist())
        since = self.frames_since_packet[:nv].tolist()
        voice_gen = plan.voice_gen
        toggles = plan.toggles
        bursts = plan.bursts

        f = 0
        while f < n_frames:
            gap = int(countdown.min())
            if gap > 0:
                take = gap if gap < n_frames - f else n_frames - f
                if len(talking) >= 64:
                    # Large talking sets: one (compiled or vectorised)
                    # schedule evaluation instead of a per-terminal loop.
                    talk_ids = np.fromiter(
                        talking, dtype=np.int64, count=len(talking)
                    )
                    since_values = np.fromiter(
                        (since[i] for i in talk_ids.tolist()),
                        dtype=np.int64,
                        count=talk_ids.shape[0],
                    )
                    offsets, rows = voice_generation_offsets(
                        since_values, period, take
                    )
                    id_list = talk_ids.tolist()
                    for o, row in zip(offsets.tolist(), rows.tolist()):
                        lst = voice_gen[f + o]
                        if lst is None:
                            lst = voice_gen[f + o] = []
                        lst.append(id_list[row])
                    for i in id_list:
                        since[i] += take
                else:
                    for i in talking:
                        s = since[i]
                        o = (-s) % period
                        while o < take:
                            lst = voice_gen[f + o]
                            if lst is None:
                                lst = voice_gen[f + o] = []
                            lst.append(i)
                            o += period
                        since[i] = s + take
                countdown -= take
                f += take
                continue

            # Event frame: fire the due sources (draw order identical to
            # advance_frame), then generate for the updated talking set.
            fired = np.nonzero(countdown == 0)[0]
            countdown -= 1
            frame_toggles: List = []
            frame_bursts: List = []
            if fast:
                self._plan_events_fast(
                    fired, frame_toggles, frame_bursts, talking, since
                )
            else:
                for i in fired.tolist():
                    if i < nv:
                        if i in talking:
                            talking.discard(i)
                            frame_toggles.append((i, False))
                            duration = rng.exponential(params.mean_silence_s)
                        else:
                            talking.add(i)
                            since[i] = 0
                            frame_toggles.append((i, True))
                            duration = rng.exponential(params.mean_talkspurt_s)
                        countdown[i] = self._duration_frames(duration)
                    else:
                        size = max(
                            1,
                            int(round(rng.exponential(params.mean_data_burst_packets))),
                        )
                        countdown[i] = self._duration_frames(
                            rng.exponential(params.mean_data_interarrival_s)
                        )
                        frame_bursts.append((i, size))
            if frame_toggles:
                toggles[f] = frame_toggles
            if frame_bursts:
                bursts[f] = frame_bursts
            gen: Optional[List] = None
            for i in talking:
                s = since[i]
                if s % period == 0:
                    if gen is None:
                        gen = voice_gen[f] = []
                    gen.append(i)
                since[i] = s + 1
            f += 1

        if nv:
            self.frames_since_packet[:nv] = since
        return plan

    def _plan_events_fast(
        self, fired: np.ndarray, frame_toggles, frame_bursts, talking, since
    ) -> None:
        """Fast-RNG-mode event firing for :meth:`plan_frames`.

        Identical draw calls (streams, sizes, order) to
        :meth:`_fire_events_fast` on the same firing set, so a macro-stepped
        fast-mode run realises the same traffic as the per-frame fast path.
        """
        params = self.params
        dt = self._dt
        countdown = self.countdown
        nv = self.n_voice

        if fired.shape[0] <= 2:
            for i in fired.tolist():
                if i < nv:
                    if i in talking:
                        talking.discard(i)
                        frame_toggles.append((i, False))
                        mean = params.mean_silence_s
                    else:
                        talking.add(i)
                        since[i] = 0
                        frame_toggles.append((i, True))
                        mean = params.mean_talkspurt_s
                    countdown[i] = self._duration_frames(
                        self._toggle_rng.exponential(mean)
                    )
                else:
                    size = max(
                        1,
                        int(round(
                            self._burst_rng.exponential(
                                params.mean_data_burst_packets
                            )
                        )),
                    )
                    countdown[i] = self._duration_frames(
                        self._burst_rng.exponential(
                            params.mean_data_interarrival_s
                        )
                    )
                    frame_bursts.append((i, size))
            return

        voice_idx = fired[fired < nv]
        data_idx = fired[fired >= nv]

        if voice_idx.shape[0]:
            was_talking = np.array(
                [i in talking for i in voice_idx.tolist()], dtype=bool
            )
            means = np.where(
                was_talking, params.mean_silence_s, params.mean_talkspurt_s
            )
            durations = (
                self._toggle_rng.standard_exponential(voice_idx.shape[0]) * means
            )
            countdown[voice_idx] = np.maximum(
                1, np.round(durations / dt).astype(np.int64)
            )
            for i, was in zip(voice_idx.tolist(), was_talking.tolist()):
                if was:
                    talking.discard(i)
                    frame_toggles.append((i, False))
                else:
                    talking.add(i)
                    since[i] = 0
                    frame_toggles.append((i, True))

        if data_idx.shape[0]:
            k = data_idx.shape[0]
            sizes = np.maximum(
                1,
                np.round(
                    self._burst_rng.exponential(
                        params.mean_data_burst_packets, size=k
                    )
                ).astype(np.int64),
            )
            gaps = self._burst_rng.exponential(
                params.mean_data_interarrival_s, size=k
            )
            countdown[data_idx] = np.maximum(1, np.round(gaps / dt).astype(np.int64))
            for i, size in zip(data_idx.tolist(), sizes.tolist()):
                frame_bursts.append((i, size))

    @kernel
    def apply_planned_frame(self, plan: TrafficBlockPlan, frame_index: int) -> None:
        """Replay one planned frame's events onto the live state.

        Together with the counter advances done at plan time this leaves
        every array a MAC kernel reads (``in_talkspurt``, ``occupancy``,
        segment FIFOs, outcome counters) in exactly the state
        :meth:`advance_frame` would have produced at this frame.
        """
        offset = frame_index - plan.start
        self._current_frame = frame_index
        toggles = plan.toggles[offset]
        if toggles is not None:
            in_talkspurt = self.in_talkspurt
            started = self._talkspurt_started_frame
            for i, now_talking in toggles:
                in_talkspurt[i] = now_talking
                if now_talking:
                    started[i] = frame_index
        gen = plan.voice_gen[offset]
        if gen is not None:
            occupancy = self.occupancy
            generated = self.voice_generated
            head_created = self.head_created
            segments = self._segments
            expiry = frame_index + self._deadline
            for i in gen:
                generated[i] += 1
                occupancy[i] += 1
                segments[i].append([frame_index, 1])
                if head_created[i] < 0:
                    head_created[i] = frame_index
                    if expiry < self._next_drop_frame:
                        self._next_drop_frame = expiry
        bursts = plan.bursts[offset]
        if bursts is not None:
            occupancy = self.occupancy
            generated = self.data_generated
            head_created = self.head_created
            segments = self._segments
            for i, size in bursts:
                generated[i] += size
                occupancy[i] += size
                segments[i].append([frame_index, size])
                if head_created[i] < 0:
                    head_created[i] = frame_index

    @kernel(batch=False)
    def transmit_voice_pop(self, index: int, max_packets: int):
        """Pop a voice grant's packets now, deferring the outcome counters.

        The deterministic half of :meth:`transmit` for a voice terminal:
        removes ``min(max_packets, occupancy)`` packets from the FIFO (a
        transmitted voice packet leaves the buffer whether or not it is
        received) and returns ``(n_transmitted, n_pre_window)`` so
        :meth:`record_voice_outcome` can attribute delivered/errored counts
        once the batched PHY draw resolves — the macro engine's mechanism
        for fusing many frames' voice transmissions into one draw.
        """
        occupancy = int(self.occupancy[index])
        n_transmitted = min(max_packets, occupancy)
        if n_transmitted == 0:
            return 0, 0
        segments = self._segments[index]
        window = self._measure_from
        pre = 0
        for _ in range(n_transmitted):
            created, _count = segments.popleft()
            if created < window:
                pre += 1
        self.occupancy[index] = occupancy - n_transmitted
        self.head_created[index] = segments[0][0] if segments else -1
        return n_transmitted, pre

    @kernel(batch=False)
    def record_voice_outcome(
        self, index: int, n_transmitted: int, n_pre_window: int, n_delivered: int
    ) -> int:
        """Resolve a deferred voice transmission's counters; return errors.

        Accounting-identical to the voice branch of :meth:`transmit` on the
        same popped packets: the first ``n_delivered`` positions were
        received, the rest errored, and positions before the measurement
        window (always a FIFO prefix) count towards neither.
        """
        floor = n_delivered if n_delivered > n_pre_window else n_pre_window
        delivered = n_delivered - n_pre_window if n_delivered > n_pre_window else 0
        errored = n_transmitted - floor
        if delivered:
            self.voice_delivered[index] += delivered
        if errored:
            self.voice_errored[index] += errored
            self._voice_loss_total += errored
        return errored

    @kernel
    def resolve_voice_outcomes(
        self,
        terminal_ids: np.ndarray,
        counts: np.ndarray,
        pre_window: np.ndarray,
        delivered: np.ndarray,
    ):
        """Batched :meth:`record_voice_outcome` over a flush's voice rows.

        One compiled (or NumPy-twin) pass resolves every deferred voice
        row's delivered/errored split and scatter-accumulates the
        per-terminal counters — count-identical to calling
        :meth:`record_voice_outcome` row by row, in any order (every update
        is an independent add).  Returns ``(rows, errors)``: the positions
        within the batch that errored, and the per-row errored counts, so
        the caller can attribute losses to its per-frame records.
        """
        delivered_totals, errored_totals, rows, errors = voice_flush_resolve(
            terminal_ids, counts, pre_window, delivered,
            self.occupancy.shape[0],
        )
        self.voice_delivered += delivered_totals
        self.voice_errored += errored_totals
        self._voice_loss_total += int(errored_totals.sum())
        return rows, errors

    def drop_expired(self, current_frame: int) -> int:
        """Drop buffered voice packets whose 20 ms deadline has passed.

        Returns the total number of packets removed; only in-window drops
        count towards the statistics, exactly like
        :meth:`Terminal.drop_expired`.  Frames at which no buffered voice
        packet can yet have expired (tracked via a conservative
        next-expiry lower bound) return without touching any array.
        """
        total = 0
        for _, dropped, _ in self.drop_expired_events(current_frame):
            total += dropped
        return total

    @kernel
    def drop_expired_events(self, current_frame: int):
        """Deadline expiry with per-terminal outcomes (macro-engine form).

        Returns a sequence of ``(index, dropped, counted)`` tuples — the
        terminals whose head-of-line packets expired this frame, how many
        packets each lost, and how many of those fell inside the current
        measurement window (the ones charged to ``voice_dropped``).  State
        mutations are identical to :meth:`drop_expired`.
        """
        nv = self.n_voice
        if not nv or current_frame < self._next_drop_frame:
            return ()
        heads = self.head_created[:nv]
        # head_created is -1 exactly when the buffer is empty, so a single
        # range test finds the expired heads.
        expired = deadline_scan(heads, current_frame - self._deadline)
        events = []
        if expired.shape[0]:
            for i in expired:
                segments = self._segments[i]
                dropped = 0
                counted = 0
                while segments and segments[0][0] + self._deadline <= current_frame:
                    created, count = segments.popleft()
                    dropped += count
                    if created >= self._measure_from:
                        counted += count
                self.occupancy[i] -= dropped
                self.head_created[i] = segments[0][0] if segments else -1
                if counted:
                    self.voice_dropped[i] += counted
                    self._voice_loss_total += counted
                events.append((int(i), dropped, counted))
        # Re-derive the next-expiry lower bound.  Transmissions only move
        # heads later (FIFO), so a bound computed here can never skip a
        # real expiry; fresh heads tighten it at their append sites.
        self._next_drop_frame = next_expiry_bound(
            self.head_created[:nv], self._deadline, _NO_DROP
        )
        return events

    # --------------------------------------------------------- transmission
    @kernel(batch=False)
    def transmit(
        self, index: int, max_packets: int, n_delivered: int, current_frame: int
    ) -> int:
        """Record a transmission opportunity's outcome for one terminal.

        Mirrors :meth:`Terminal.transmit` exactly, including the measurement
        -window filtering of outcomes: voice pops every transmitted packet
        (errored ones are lost), data pops only the delivered ones and
        counts the rest as retransmissions.
        """
        if max_packets < 0:
            raise ValueError("max_packets must be non-negative")
        occupancy = int(self.occupancy[index])
        n_transmitted = min(max_packets, occupancy)
        if n_delivered < 0 or n_delivered > n_transmitted:
            raise ValueError("n_delivered must lie in [0, n_transmitted]")
        if n_transmitted == 0:
            return 0
        segments = self._segments[index]
        window = self._measure_from

        if self.is_voice[index]:
            delivered = 0
            errored = 0
            for position in range(n_transmitted):
                created, count = segments.popleft()
                if created < window:
                    continue
                if position < n_delivered:
                    delivered += count
                else:
                    errored += count
            self.occupancy[index] -= n_transmitted
            self.head_created[index] = segments[0][0] if segments else -1
            if delivered:
                self.voice_delivered[index] += delivered
            if errored:
                self.voice_errored[index] += errored
                self._voice_loss_total += errored
            return n_transmitted

        remaining = n_delivered
        delays = self._data_delays[index]
        while remaining:
            segment = segments[0]
            created, count = segment
            take = min(remaining, count)
            if created >= window:
                self.data_delivered[index] += take
                delay = max(0, current_frame - created)
                delays.extend([delay] * take)
            if take == count:
                segments.popleft()
            else:
                segment[1] = count - take
            remaining -= take
        self.occupancy[index] -= n_delivered
        self.head_created[index] = segments[0][0] if segments else -1
        self.data_retransmissions[index] += n_transmitted - n_delivered
        return n_delivered

    @kernel
    def apply_grants(
        self, indices, capacities, delivered_counts, current_frame: int
    ) -> int:
        """Apply one executed batch of grants; return delivered data packets.

        Equivalent to calling :meth:`transmit` per grant (same order, same
        accounting); consolidated so the engine's hot loop crosses the
        population boundary once per batch instead of once per grant.
        """
        data_delivered = 0
        voice = self.is_voice
        for index, capacity, n_delivered in zip(indices, capacities, delivered_counts):
            n_ok = int(n_delivered)
            taken = self.transmit(
                index, max_packets=capacity, n_delivered=n_ok,
                current_frame=current_frame,
            )
            if not voice[index]:
                data_delivered += n_ok
            if taken > capacity:
                raise AssertionError("terminal consumed more packets than granted")
        return data_delivered

    # ------------------------------------------------------------ accounting
    def begin_measurement(self, frame_index: int) -> None:
        """Start a fresh measurement window at ``frame_index``.

        Zeroes every outcome counter and excludes packets created before the
        window from all future outcome accounting — the PR-2 epoch-tagging
        semantics (``delivered + errored + dropped <= generated``) carried
        over to array counters.
        """
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        for array in (
            self.voice_generated,
            self.voice_delivered,
            self.voice_errored,
            self.voice_dropped,
            self.data_generated,
            self.data_delivered,
            self.data_retransmissions,
        ):
            array[:] = 0
        self._data_delays = [[] for _ in range(self._n)]
        self._measure_from = int(frame_index)
        self._voice_loss_total = 0

    # ----------------------------------------------------- handover migration
    def describe_index(self, index: int) -> str:
        """Human-readable id for error messages: beam-local when sharded."""
        if self.beam is None:
            return f"terminal {index}"
        return f"(beam {self.beam}, local_id {index})"

    def _check_index(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self._n:
            where = (
                "population"
                if self.beam is None
                else f"beam {self.beam} (ids are beam-local)"
            )
            raise IndexError(
                f"{self.describe_index(index)} outside the dense 0.."
                f"{self._n - 1} {where}"
            )
        return index

    @kernel
    def export_terminal_state(self, index: int) -> TerminalMigrationState:
        """Detach one slot's full traffic state (handover export).

        Returns an owning copy — FIFO segments and delay samples included —
        and leaves the slot itself untouched; the caller is expected to
        overwrite it with :meth:`import_terminal_state` (a handover is a
        state *swap* between two same-class slots, keeping both populations
        at their fixed sizes and dense-id layouts).
        """
        index = self._check_index(index)
        return TerminalMigrationState(
            is_voice=bool(self.is_voice[index]),
            in_talkspurt=bool(self.in_talkspurt[index]),
            countdown=int(self.countdown[index]),
            frames_since_packet=int(self.frames_since_packet[index]),
            talkspurt_started_frame=int(self._talkspurt_started_frame[index]),
            occupancy=int(self.occupancy[index]),
            head_created=int(self.head_created[index]),
            segments=[list(segment) for segment in self._segments[index]],
            voice_generated=int(self.voice_generated[index]),
            voice_delivered=int(self.voice_delivered[index]),
            voice_errored=int(self.voice_errored[index]),
            voice_dropped=int(self.voice_dropped[index]),
            data_generated=int(self.data_generated[index]),
            data_delivered=int(self.data_delivered[index]),
            data_retransmissions=int(self.data_retransmissions[index]),
            data_delays=list(self._data_delays[index]),
        )

    @kernel
    def import_terminal_state(
        self, index: int, state: TerminalMigrationState
    ) -> None:
        """Install a detached terminal state into one slot (handover import).

        The slot's service class must match the incoming state (the dense
        voice-then-data layout is immutable; handover exchanges same-class
        subscribers).  Outcome counters move with the subscriber, so the
        population's running loss total is adjusted by the difference
        between the incoming and outgoing slot's losses — summed over both
        ends of a swap the global totals are exactly conserved.
        """
        index = self._check_index(index)
        if bool(self.is_voice[index]) != state.is_voice:
            raise ValueError(
                f"cannot import a "
                f"{'voice' if state.is_voice else 'data'} terminal state "
                f"into {self.describe_index(index)}: the slot's service "
                f"class is fixed by the dense voice-then-data layout"
            )
        outgoing_losses = int(self.voice_errored[index] + self.voice_dropped[index])
        self.in_talkspurt[index] = state.in_talkspurt
        self.countdown[index] = state.countdown
        self.frames_since_packet[index] = state.frames_since_packet
        self._talkspurt_started_frame[index] = state.talkspurt_started_frame
        self.occupancy[index] = state.occupancy
        self.head_created[index] = state.head_created
        self._segments[index] = deque(list(s) for s in state.segments)
        self.voice_generated[index] = state.voice_generated
        self.voice_delivered[index] = state.voice_delivered
        self.voice_errored[index] = state.voice_errored
        self.voice_dropped[index] = state.voice_dropped
        self.data_generated[index] = state.data_generated
        self.data_delivered[index] = state.data_delivered
        self.data_retransmissions[index] = state.data_retransmissions
        self._data_delays[index] = list(state.data_delays)
        self._voice_loss_total += (
            int(state.voice_errored + state.voice_dropped) - outgoing_losses
        )
        if state.is_voice and state.head_created >= 0:
            bound = state.head_created + self._deadline
            if bound < self._next_drop_frame:
                self._next_drop_frame = bound

    # ------------------------------------------------------------- plumbing
    def data_delays(self, index: int) -> List[int]:
        """Access delays (frames) of the terminal's delivered data packets."""
        return self._data_delays[index]

    def all_data_delays(self) -> List[int]:
        """Every recorded data access delay, in terminal-id order."""
        merged: List[int] = []
        for index in range(self.n_voice, self._n):
            merged.extend(self._data_delays[index])
        return merged

    def stats_of(self, index: int) -> TerminalStats:
        """Materialise one terminal's counters as a :class:`TerminalStats`."""
        return TerminalStats(
            voice_generated=int(self.voice_generated[index]),
            voice_delivered=int(self.voice_delivered[index]),
            voice_errored=int(self.voice_errored[index]),
            voice_dropped=int(self.voice_dropped[index]),
            data_generated=int(self.data_generated[index]),
            data_delivered=int(self.data_delivered[index]),
            data_retransmissions=int(self.data_retransmissions[index]),
            data_delay_frames=list(self._data_delays[index]),
        )

    def packets_of(self, index: int, n: Optional[int] = None) -> List[Packet]:
        """Materialise (a prefix of) a terminal's buffer as packet objects.

        The synthesised packets carry fresh debug sequence numbers; their
        kind, creation frame and deadline match the buffered state.
        """
        kind = TrafficKind.VOICE if self.is_voice[index] else TrafficKind.DATA
        packets: List[Packet] = []
        budget = int(self.occupancy[index]) if n is None else max(0, int(n))
        for created, count in self._segments[index]:
            for _ in range(min(count, budget - len(packets))):
                packets.append(
                    Packet(
                        kind=kind,
                        terminal_id=index,
                        created_frame=int(created),
                        deadline_frame=(
                            int(created) + self._deadline if kind.is_voice else None
                        ),
                    )
                )
            if len(packets) >= budget:
                break
        return packets

    def _duration_frames(self, duration_s: float) -> int:
        return max(1, int(round(duration_s / self._dt)))


class TerminalView:
    """Thin per-index read/transmit view over a :class:`TerminalPopulation`.

    Exposes the :class:`~repro.traffic.terminal.Terminal` API the MAC layer
    and the engine consume, backed by the population arrays.  State advance
    must go through the population's vectorised kernels (advancing a single
    view would reorder the shared RNG stream), so :meth:`advance_frame` and
    :meth:`drop_expired` raise.
    """

    __slots__ = ("population", "_index", "kind", "is_voice", "is_data")

    def __init__(self, population: TerminalPopulation, index: int) -> None:
        self.population = population
        self._index = int(index)
        # The service class is immutable, so it is cached as plain Python
        # attributes — the MAC layer reads these in per-candidate loops.
        self.is_voice = bool(population.is_voice[self._index])
        self.is_data = not self.is_voice
        self.kind = TrafficKind.VOICE if self.is_voice else TrafficKind.DATA

    # ------------------------------------------------------------------ API
    @property
    def terminal_id(self) -> int:
        """Population index of this device (dense, equals the array row)."""
        return self._index

    @property
    def buffer_occupancy(self) -> int:
        """Number of packets awaiting transmission."""
        return int(self.population.occupancy[self._index])

    @property
    def has_pending_packets(self) -> bool:
        """Whether at least one packet awaits transmission."""
        return self.population.occupancy[self._index] > 0

    @property
    def in_talkspurt(self) -> bool:
        """Whether the device is currently in a talkspurt (False for data)."""
        return bool(self.population.in_talkspurt[self._index])

    def talkspurt_started(self) -> bool:
        """Whether a new talkspurt began at the latest frame boundary."""
        population = self.population
        return bool(
            population._talkspurt_started_frame[self._index]
            == population._current_frame
        )

    @property
    def stats(self) -> TerminalStats:
        """Snapshot of this terminal's counters (materialised on access)."""
        return self.population.stats_of(self._index)

    def peek_packets(self, n: int) -> List[Packet]:
        """Materialise (without removing) the first ``n`` buffered packets."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return self.population.packets_of(self._index, n)

    def head_deadline_frames(self, current_frame: int) -> Optional[int]:
        """Frames to the head-of-line packet's deadline (None if no deadline)."""
        pop = self.population
        head = pop.head_created[self._index]
        if head < 0 or not pop.is_voice[self._index]:
            return None
        return max(0, int(head) + pop.params.voice_deadline_frames - current_frame)

    def head_waiting_frames(self, current_frame: int) -> int:
        """Frames the head-of-line packet has been waiting (0 if empty)."""
        head = self.population.head_created[self._index]
        if head < 0:
            return 0
        return max(0, current_frame - int(head))

    def transmit(self, max_packets: int, n_delivered: int, current_frame: int) -> int:
        """Record a transmission outcome (delegates to the population)."""
        return self.population.transmit(
            self._index, max_packets, n_delivered, current_frame
        )

    def begin_measurement(self, frame_index: int) -> None:
        """Unsupported per view: the window is population-wide."""
        raise RuntimeError(
            "begin_measurement is population-wide on the columnar backend; "
            "call TerminalPopulation.begin_measurement instead"
        )

    def advance_frame(self, frame_index: int) -> int:
        """Unsupported per view: advancing one terminal would desynchronise
        the shared traffic RNG stream — advance the TerminalPopulation."""
        raise RuntimeError(
            "advance the TerminalPopulation, not an individual TerminalView"
        )

    def drop_expired(self, current_frame: int) -> int:
        """Unsupported per view; use TerminalPopulation.drop_expired."""
        raise RuntimeError(
            "drop expired packets through TerminalPopulation.drop_expired"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TerminalView(id={self._index}, kind={self.kind.value}, "
            f"occupancy={self.buffer_occupancy})"
        )


class TerminalViews(Sequence):
    """Sequence of :class:`TerminalView` handed to ``protocol.run_frame``.

    Iteration order is ascending terminal id, matching the object backend's
    population list.  The ``population`` attribute (and ``dense_ids`` flag)
    let the MAC layer's fast paths swap per-object loops for array kernels.
    """

    #: Terminal ids are guaranteed dense 0..n-1 (id == sequence index).
    dense_ids = True

    def __init__(self, population: TerminalPopulation) -> None:
        self.population = population
        self._views = [TerminalView(population, i) for i in range(len(population))]

    def __len__(self) -> int:
        return len(self._views)

    def __getitem__(self, index):
        return self._views[index]

    def __iter__(self) -> Iterator[TerminalView]:
        return iter(self._views)
