"""Voice source model (on/off talkspurt--silence process).

Section 2 of the paper: the voice source continuously toggles between a
*talkspurt* state and a *silence* state, whose durations are exponentially
distributed with means ``t_t = 1.0 s`` and ``t_s = 1.35 s`` respectively
(after Gruber & Strawczynski's subjective study).  State changes happen only
at frame boundaries.  During a talkspurt the 8 kbit/s speech codec emits one
160-bit packet every 20 ms; each packet must be delivered within 20 ms or the
mobile device drops it.
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from repro.config import SimulationParameters
from repro.traffic.packets import Packet, TrafficKind

__all__ = ["VoiceActivity", "VoiceSource"]


class VoiceActivity(enum.Enum):
    """Current state of the on/off voice source."""

    TALKSPURT = "talkspurt"
    SILENCE = "silence"


class VoiceSource:
    """Frame-synchronous on/off voice packet generator.

    Parameters
    ----------
    params:
        Simulation parameters (talkspurt/silence means, frame timing).
    rng:
        Random generator for the exponential state durations.
    terminal_id:
        Identifier stamped onto generated packets.
    start_silent:
        If ``True`` (default) the source starts in a silence period of random
        remaining length; otherwise it starts in a talkspurt.  The initial
        state is drawn from the stationary distribution by
        :func:`repro.traffic.generator.build_population`.
    """

    def __init__(
        self,
        params: SimulationParameters,
        rng: np.random.Generator,
        terminal_id: int = 0,
        start_silent: bool = True,
    ) -> None:
        self._params = params
        self._rng = rng
        self._terminal_id = int(terminal_id)
        self._state = VoiceActivity.SILENCE if start_silent else VoiceActivity.TALKSPURT
        self._frames_left = self._draw_duration_frames(self._state)
        self._frames_per_packet = params.frames_per_voice_period
        self._deadline_frames = params.voice_deadline_frames
        self._frames_since_packet = 0
        self._talkspurt_just_started = False
        self._pending_initial_talkspurt = not start_silent
        self._generated = 0

    # ------------------------------------------------------------------ API
    @property
    def activity(self) -> VoiceActivity:
        """Current on/off state."""
        return self._state

    @property
    def in_talkspurt(self) -> bool:
        """Whether the source is currently in a talkspurt."""
        return self._state is VoiceActivity.TALKSPURT

    @property
    def packets_generated(self) -> int:
        """Total number of voice packets generated so far."""
        return self._generated

    @property
    def activity_factor(self) -> float:
        """Stationary probability of being in a talkspurt (~0.426)."""
        tt, ts = self._params.mean_talkspurt_s, self._params.mean_silence_s
        return tt / (tt + ts)

    def talkspurt_started(self) -> bool:
        """Whether a new talkspurt began at the most recent frame boundary.

        This is the event that triggers the transmission of a new voice
        request in every protocol.
        """
        return self._talkspurt_just_started

    def advance_frame(self, frame_index: int) -> List[Packet]:
        """Advance one frame; return any packets generated at this boundary."""
        if frame_index < 0:
            raise ValueError("frame_index must be non-negative")
        self._talkspurt_just_started = self._pending_initial_talkspurt
        self._pending_initial_talkspurt = False
        self._maybe_toggle_state()

        packets: List[Packet] = []
        if self._state is VoiceActivity.TALKSPURT:
            if self._frames_since_packet % self._frames_per_packet == 0:
                packets.append(
                    Packet(
                        kind=TrafficKind.VOICE,
                        terminal_id=self._terminal_id,
                        created_frame=frame_index,
                        deadline_frame=frame_index + self._deadline_frames,
                    )
                )
                self._generated += 1
            self._frames_since_packet += 1
        return packets

    # ------------------------------------------------------------ internals
    def _maybe_toggle_state(self) -> None:
        if self._frames_left > 0:
            self._frames_left -= 1
            return
        if self._state is VoiceActivity.SILENCE:
            self._state = VoiceActivity.TALKSPURT
            self._talkspurt_just_started = True
            self._frames_since_packet = 0
        else:
            self._state = VoiceActivity.SILENCE
        self._frames_left = self._draw_duration_frames(self._state)

    def _draw_duration_frames(self, state: VoiceActivity) -> int:
        mean_s = (
            self._params.mean_talkspurt_s
            if state is VoiceActivity.TALKSPURT
            else self._params.mean_silence_s
        )
        duration_s = self._rng.exponential(mean_s)
        frames = int(round(duration_s / self._params.frame_duration_s))
        return max(1, frames)
