"""Committed baseline of grandfathered findings.

The baseline lets the lint gate turn on *now* without first fixing every
historical finding: ``--update-baseline`` records the current fresh
findings, and from then on only *new* findings fail the run.  Keys are
line-number-free (rule + path + enclosing symbol + normalised source line,
see :meth:`~repro.lint.findings.Finding.baseline_key`), so shifting code up
or down does not churn the file; editing the offending line itself retires
the entry and resurfaces the finding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set

from repro.lint.findings import Finding

__all__ = ["load_baseline", "write_baseline"]

_FORMAT = "repro-lint-baseline"


def load_baseline(path: Path) -> Set[str]:
    """The recorded baseline keys; empty for a missing/unreadable file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return set()
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        return set()
    entries = payload.get("findings")
    if not isinstance(entries, list):
        return set()
    keys: Set[str] = set()
    for entry in entries:
        if isinstance(entry, dict) and isinstance(entry.get("key"), str):
            keys.add(entry["key"])
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Record ``findings`` as the new baseline; returns how many entries.

    Entries keep the human-readable context (rule, location, message) next
    to the key so a reviewer can audit what exactly was grandfathered.
    """
    entries: List[Dict[str, object]] = []
    seen: Set[str] = set()
    for finding in sorted(findings):
        key = finding.baseline_key()
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "key": key,
                "rule": finding.rule,
                "location": finding.location(),
                "message": finding.message,
            }
        )
    payload: Dict[str, object] = {
        "format": _FORMAT,
        "comment": (
            "Grandfathered lint findings; maintained by `python -m repro "
            "lint --update-baseline`.  New findings are not covered and "
            "fail the run."
        ),
        "findings": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
