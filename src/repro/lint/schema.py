"""Schema-hygiene fingerprinting for rule SCH001.

The result store serialises :class:`~repro.sim.scenario.Scenario` inside
every cached record and rebuilds it with an *exact field-set match*
(:func:`repro.store.serialization._rebuild`), so any change to the scenario
or parameter dataclasses silently invalidates — or worse, mis-deserialises —
previously cached results unless ``SCHEMA_VERSION`` is bumped.  SCH001 makes
that contract structural: the dataclass field lists are fingerprinted from
the AST (no imports, no execution) and committed alongside the
``SCHEMA_VERSION`` they were recorded against in
``src/repro/lint/schema_fingerprint.json``; a fingerprint drift without a
matching version bump fails lint, and ``--update-baseline`` re-records the
pair once the bump has landed.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.analyzer import Project, SourceModule

__all__ = [
    "SCHEMA_CLASSES",
    "extract_schema_fields",
    "extract_schema_version",
    "load_recorded_fingerprint",
    "schema_fingerprint",
    "write_recorded_fingerprint",
]

#: Dataclasses whose field sets define the persisted-run schema, and the
#: project-relative file each is declared in.
SCHEMA_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("Scenario", "sim/scenario.py"),
    ("ConstellationScenario", "constellation/scenario.py"),
    ("SimulationParameters", "config.py"),
)

#: Where the writer's wire-format version is declared.
SCHEMA_VERSION_FILE = "store/serialization.py"

_FieldList = List[Dict[str, str]]


def _class_fields(module: SourceModule, class_name: str) -> Optional[_FieldList]:
    """Annotated fields of one top-level (data)class, in declaration order."""
    if module.tree is None:
        return None
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        fields: _FieldList = []
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            name = statement.target.id
            if name.startswith("_") or name.isupper():
                continue  # ClassVar-style constants are not schema fields
            fields.append(
                {
                    "name": name,
                    "annotation": ast.unparse(statement.annotation),
                    "default": (
                        ast.unparse(statement.value)
                        if statement.value is not None
                        else ""
                    ),
                }
            )
        return fields
    return None


def extract_schema_fields(
    project: Project,
) -> Optional[Dict[str, _FieldList]]:
    """Field lists of every schema class, or None if none are present.

    A project that carries *some but not all* schema sources still gets a
    fingerprint over what it has (the missing class is recorded as absent),
    so synthetic fixture trees can exercise the rule with just a
    ``sim/scenario.py``.
    """
    found: Dict[str, _FieldList] = {}
    for class_name, suffix in SCHEMA_CLASSES:
        module = project.module_ending(suffix)
        if module is None:
            continue
        fields = _class_fields(module, class_name)
        if fields is not None:
            found[class_name] = fields
    return found or None


def extract_schema_version(project: Project) -> Optional[int]:
    """The ``SCHEMA_VERSION`` literal in ``store/serialization.py``."""
    module = project.module_ending(SCHEMA_VERSION_FILE)
    if module is None or module.tree is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if "SCHEMA_VERSION" in targets and isinstance(
                node.value, ast.Constant
            ) and isinstance(node.value.value, int):
                return node.value.value
    return None


def schema_fingerprint(fields: Dict[str, _FieldList]) -> str:
    """Stable short hash of the schema field lists."""
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_recorded_fingerprint(path: Path) -> Optional[Dict[str, object]]:
    """The committed ``{fingerprint, schema_version, fields}`` record."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("fingerprint"), str):
        return None
    if not isinstance(payload.get("schema_version"), int):
        return None
    return payload


def write_recorded_fingerprint(
    path: Path, fields: Dict[str, _FieldList], version: Optional[int]
) -> Dict[str, object]:
    """Record the current schema fingerprint next to its version."""
    payload: Dict[str, object] = {
        "comment": (
            "Recorded by `python -m repro lint --update-baseline`; SCH001 "
            "fails when the dataclass fields drift from this fingerprint "
            "without a SCHEMA_VERSION bump in repro.store.serialization."
        ),
        "fingerprint": schema_fingerprint(fields),
        "schema_version": version if version is not None else -1,
        "fields": {
            class_name: [entry["name"] for entry in entries]
            for class_name, entries in fields.items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload
