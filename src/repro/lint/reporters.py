"""Text and JSON renderings of a lint report.

The JSON shape is a stable machine interface (asserted by
``tests/lint/test_reporters.py``): top-level ``{"version", "root",
"summary", "findings"}``, each finding carrying the key set of
:meth:`~repro.lint.findings.Finding.as_dict` plus ``"baselined"``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.runner import LintReport

__all__ = ["JSON_REPORT_VERSION", "render_json", "render_text", "report_payload"]

#: Bump when the JSON report shape changes.
JSON_REPORT_VERSION = 1


def report_payload(report: LintReport) -> Dict[str, object]:
    """The JSON-reporter document as a plain dictionary."""
    findings: List[Dict[str, object]] = []
    for finding in report.findings:
        entry = finding.as_dict()
        entry["baselined"] = False
        findings.append(entry)
    for finding in report.baselined:
        entry = finding.as_dict()
        entry["baselined"] = True
        findings.append(entry)
    return {
        "version": JSON_REPORT_VERSION,
        "root": str(report.root),
        "summary": {
            "modules": report.n_modules,
            "kernel_functions": report.n_kernels,
            "rules": list(report.rule_ids),
            "fresh": len(report.findings),
            "failing": sum(1 for f in report.findings if f.fails),
            "baselined": len(report.baselined),
            "suppressed": report.n_suppressed,
            "exit_code": report.exit_code,
        },
        "findings": findings,
    }


def render_json(report: LintReport) -> str:
    return json.dumps(report_payload(report), indent=2, sort_keys=True)


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding, grouped by file."""
    lines: List[str] = []
    last_path = None
    for finding in report.findings:
        if finding.path != last_path:
            if last_path is not None:
                lines.append("")
            last_path = finding.path
        lines.append(
            f"{finding.location()}: {finding.severity} "
            f"[{finding.rule}] {finding.message}"
        )
    if report.findings:
        lines.append("")
    counts = (
        f"{len(report.findings)} finding(s)"
        if report.findings
        else "clean"
    )
    extras: List[str] = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.n_suppressed:
        extras.append(f"{report.n_suppressed} suppressed")
    suffix = f" ({', '.join(extras)})" if extras else ""
    lines.append(
        f"repro lint: {counts}{suffix} across {report.n_modules} module(s), "
        f"{report.n_kernels} @kernel function(s), "
        f"rules {', '.join(report.rule_ids)}"
    )
    return "\n".join(lines)
