"""Finding records produced by the lint rules."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["Finding", "SEVERITIES", "FAILING_SEVERITIES"]

#: Recognised severities, most severe first.  ``error`` and ``warning``
#: findings fail the lint run (non-zero exit); ``note`` findings are
#: informational only (e.g. "fingerprint stale after a schema bump").
SEVERITIES = ("error", "warning", "note")

#: Severities that make ``python -m repro lint`` exit non-zero.
FAILING_SEVERITIES = frozenset({"error", "warning"})

_WHITESPACE = re.compile(r"\s+")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is POSIX-relative to the linted root, so findings (and the
    baseline keys derived from them) are stable across checkouts.  The
    ``symbol``/``snippet`` pair — enclosing definition plus the normalised
    source line — keys the baseline instead of the line number, so findings
    survive unrelated edits that merely shift code up or down.
    """

    path: str
    line: int
    column: int
    rule: str
    severity: str
    message: str
    symbol: str = ""
    snippet: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def fails(self) -> bool:
        """Whether this finding (if fresh and unsuppressed) fails the run."""
        return self.severity in FAILING_SEVERITIES

    def baseline_key(self) -> str:
        """Line-number-free identity used by the committed baseline."""
        snippet = _WHITESPACE.sub(" ", self.snippet).strip()
        return f"{self.rule}|{self.path}|{self.symbol}|{snippet}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-reporter payload for one finding (stable key set)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "symbol": self.symbol,
            "snippet": self.snippet.strip(),
            "key": self.baseline_key(),
        }
