"""Source-contract markers checked by :mod:`repro.lint`.

The :func:`kernel` decorator is a pure *marker*: it returns the function
unchanged (zero runtime cost in the frame loop) and exists so the static
analyzer knows which bodies carry the kernel-purity contract.  A marked
function is one of the engine's hot-path kernels, and the KRN rules hold it
to three promises the parity suites otherwise only discover by diverging:

* **No conditional draws** (``KRN001``): a random draw must not sit under a
  data-dependent branch, because the *number and order* of draws taken from
  a stream is part of the cross-backend parity contract.  Where a kernel
  deliberately gates a draw to mirror the object backend's per-terminal
  order, the site must carry an explicit ``# lint: allow[KRN001]`` with the
  reason.
* **No unordered iteration** (``KRN001``): iterating a ``set`` (or the
  views of a freshly-built ``dict``) makes the emission order depend on
  hashing/insertion history; kernels must iterate arrays, lists or
  ``sorted(...)`` views.
* **No clocks** (``KRN002``): wall-clock or monotonic time must never leak
  into kernel state — simulated time is the only clock.  Timing lives one
  layer out, in :mod:`repro.obs` spans around the kernel call sites.

Besides the marker attribute, every decoration is recorded in
:data:`KERNEL_REGISTRY` with its ``batch`` classification:

* ``batch=True`` (the default) — the kernel advances *many* terminals per
  call (one entry ≈ one vectorised step).  These are what
  :class:`repro.obs.dispatch.KernelDispatchCounter` counts, preserving the
  "macro mode needs fewer dispatches per frame" invariant that
  ``BENCH_engine.json`` records as ``dispatches_per_frame``.
* ``batch=False`` — a scalar per-terminal helper (e.g. the object
  backend's single-terminal ``transmit``).  Still bound by the purity
  contract, but excluded from dispatch counting: macro mode calls scalar
  helpers per *grant*, so counting them would invert the invariant.

This module must stay import-light (stdlib only): it is imported by every
kernel-bearing module in ``mac``/``traffic``/``sim``/``phy``/``accel``.
"""

from __future__ import annotations

from typing import Any, Callable, List, NamedTuple, Optional, TypeVar, Union, overload

__all__ = [
    "KERNEL_ATTR",
    "KERNEL_BATCH_ATTR",
    "KernelInfo",
    "KERNEL_REGISTRY",
    "is_kernel",
    "is_batch_kernel",
    "kernel",
    "registered_kernels",
]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Attribute set on functions marked with :func:`kernel`.
KERNEL_ATTR = "__repro_kernel__"

#: Attribute carrying the batch/scalar classification.
KERNEL_BATCH_ATTR = "__repro_kernel_batch__"


class KernelInfo(NamedTuple):
    """One :func:`kernel` decoration, as recorded in the registry."""

    module: str
    qualname: str
    func: Callable[..., Any]
    batch: bool


#: Every decoration in import order.  Numba twin registrations (the accel
#: seam redefines a kernel under the same name when numba is present)
#: appear as separate entries; consumers that patch by identity naturally
#: skip the shadowed twin because no live binding points at it.
KERNEL_REGISTRY: List[KernelInfo] = []


@overload
def kernel(func: _F) -> _F: ...


@overload
def kernel(*, batch: bool = ...) -> Callable[[_F], _F]: ...


def kernel(
    func: Optional[_F] = None, *, batch: bool = True
) -> Union[_F, Callable[[_F], _F]]:
    """Mark ``func`` as a hot-path kernel bound by the purity contract.

    Usable bare (``@kernel``) or parameterised (``@kernel(batch=False)``)
    — see the module docstring for what ``batch`` classifies.  Either form
    is a no-op at runtime: no wrapper frame is inserted, so marking a
    kernel can never perturb performance or the call stack.  The contract
    itself is enforced statically by the KRN rules of
    ``python -m repro lint``.
    """
    if func is None:
        def decorate(inner: _F) -> _F:
            return _register(inner, batch)
        return decorate
    return _register(func, batch)


def _register(func: _F, batch: bool) -> _F:
    setattr(func, KERNEL_ATTR, True)
    setattr(func, KERNEL_BATCH_ATTR, batch)
    KERNEL_REGISTRY.append(
        KernelInfo(
            module=getattr(func, "__module__", "") or "",
            qualname=getattr(func, "__qualname__", "") or "",
            func=func,
            batch=batch,
        )
    )
    return func


def registered_kernels() -> List[KernelInfo]:
    """Snapshot of :data:`KERNEL_REGISTRY` (import order preserved)."""
    return list(KERNEL_REGISTRY)


def is_kernel(obj: object) -> bool:
    """Whether ``obj`` was marked with :func:`kernel`."""
    return getattr(obj, KERNEL_ATTR, False) is True


def is_batch_kernel(obj: object) -> bool:
    """Whether ``obj`` is a kernel counted by the dispatch counter."""
    return is_kernel(obj) and getattr(obj, KERNEL_BATCH_ATTR, True) is True
