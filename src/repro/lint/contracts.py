"""Source-contract markers checked by :mod:`repro.lint`.

The :func:`kernel` decorator is a pure *marker*: it returns the function
unchanged (zero runtime cost in the frame loop) and exists so the static
analyzer knows which bodies carry the kernel-purity contract.  A marked
function is one of the engine's hot-path kernels, and the KRN rules hold it
to three promises the parity suites otherwise only discover by diverging:

* **No conditional draws** (``KRN001``): a random draw must not sit under a
  data-dependent branch, because the *number and order* of draws taken from
  a stream is part of the cross-backend parity contract.  Where a kernel
  deliberately gates a draw to mirror the object backend's per-terminal
  order, the site must carry an explicit ``# lint: allow[KRN001]`` with the
  reason.
* **No unordered iteration** (``KRN001``): iterating a ``set`` (or the
  views of a freshly-built ``dict``) makes the emission order depend on
  hashing/insertion history; kernels must iterate arrays, lists or
  ``sorted(...)`` views.
* **No clocks** (``KRN002``): wall-clock or monotonic time must never leak
  into kernel state — simulated time is the only clock.

This module must stay import-light (stdlib only): it is imported by every
kernel-bearing module in ``mac``/``traffic``/``sim``/``phy``/``accel``.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

__all__ = ["KERNEL_ATTR", "is_kernel", "kernel"]

_F = TypeVar("_F", bound=Callable[..., Any])

#: Attribute set on functions marked with :func:`kernel`.
KERNEL_ATTR = "__repro_kernel__"


def kernel(func: _F) -> _F:
    """Mark ``func`` as a hot-path kernel bound by the purity contract.

    The decorator is intentionally a no-op at runtime — no wrapper frame is
    inserted — so marking a kernel can never perturb performance or the
    call stack.  The contract itself is enforced statically by the KRN
    rules of ``python -m repro lint``.
    """
    setattr(func, KERNEL_ATTR, True)
    return func


def is_kernel(obj: object) -> bool:
    """Whether ``obj`` was marked with :func:`kernel`."""
    return getattr(obj, KERNEL_ATTR, False) is True
