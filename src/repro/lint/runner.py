"""Drive the rules over a tree and fold in suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint import schema as schema_mod
from repro.lint.analyzer import Project, SourceModule, load_project
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.findings import Finding
from repro.lint.rules import all_rules

__all__ = [
    "LintReport",
    "default_baseline_path",
    "default_fingerprint_path",
    "default_root",
    "lint_tree",
    "update_baseline",
]


def default_root() -> Path:
    """The installed ``repro`` package directory (the tree we self-lint)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Optional[Path] = None) -> Path:
    return (root or default_root()) / "lint" / "baseline.json"


def default_fingerprint_path(root: Optional[Path] = None) -> Path:
    return (root or default_root()) / "lint" / "schema_fingerprint.json"


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``findings`` are *fresh* (neither suppressed nor baselined) and sorted;
    ``baselined`` are the grandfathered matches, kept for reporting.
    """

    root: Path
    findings: List[Finding]
    baselined: List[Finding] = field(default_factory=list)
    n_suppressed: int = 0
    n_modules: int = 0
    n_kernels: int = 0
    rule_ids: Tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """1 when any fresh error/warning finding remains, else 0."""
        return 1 if any(finding.fails for finding in self.findings) else 0

    def by_rule(self) -> Dict[str, List[Finding]]:
        grouped: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.rule, []).append(finding)
        return grouped


def _run_rules(
    project: Project, only: Optional[Iterable[str]]
) -> Tuple[List[Finding], int, Tuple[str, ...]]:
    """Raw rule pass: (unsuppressed findings, suppressed count, rule ids)."""
    modules: Dict[str, SourceModule] = {
        module.rel: module for module in project.modules
    }
    rules = all_rules(only)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(project):
            module = modules.get(finding.path)
            if module is not None and module.is_suppressed(finding):
                suppressed += 1
                continue
            kept.append(finding)
    kept.sort()
    return kept, suppressed, tuple(rule.id for rule in rules)


def lint_tree(
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    fingerprint_path: Optional[Path] = None,
    rules: Optional[Iterable[str]] = None,
    exclude: Tuple[str, ...] = (),
) -> LintReport:
    """Lint every ``*.py`` under ``root``.

    Parameters default to the installed package tree and its committed
    baseline/fingerprint files, so ``lint_tree()`` with no arguments is the
    self-clean gate the tests and ``selftest`` run.
    """
    root = Path(root) if root is not None else default_root()
    if baseline_path is None:
        baseline_path = default_baseline_path(root)
    if fingerprint_path is None:
        fingerprint_path = default_fingerprint_path(root)
    project = load_project(
        root, fingerprint_path=fingerprint_path, exclude=exclude
    )
    raw, suppressed, rule_ids = _run_rules(project, rules)
    known = load_baseline(baseline_path)
    fresh = [f for f in raw if f.baseline_key() not in known]
    grandfathered = [f for f in raw if f.baseline_key() in known]
    return LintReport(
        root=root,
        findings=fresh,
        baselined=grandfathered,
        n_suppressed=suppressed,
        n_modules=len(project.modules),
        n_kernels=project.kernel_count(),
        rule_ids=rule_ids,
    )


def update_baseline(
    root: Optional[Path] = None,
    baseline_path: Optional[Path] = None,
    fingerprint_path: Optional[Path] = None,
    rules: Optional[Iterable[str]] = None,
    exclude: Tuple[str, ...] = (),
) -> LintReport:
    """Re-record the schema fingerprint and grandfather current findings.

    Returns the post-update report, which is clean by construction (every
    previously fresh finding is now baselined and the fingerprint matches).
    """
    root = Path(root) if root is not None else default_root()
    if baseline_path is None:
        baseline_path = default_baseline_path(root)
    if fingerprint_path is None:
        fingerprint_path = default_fingerprint_path(root)
    project = load_project(
        root, fingerprint_path=fingerprint_path, exclude=exclude
    )
    fields = schema_mod.extract_schema_fields(project)
    if fields is not None:
        schema_mod.write_recorded_fingerprint(
            fingerprint_path,
            fields,
            schema_mod.extract_schema_version(project),
        )
    # Re-lint against the fresh fingerprint, then baseline what remains.
    report = lint_tree(
        root,
        baseline_path=baseline_path,
        fingerprint_path=fingerprint_path,
        rules=rules,
        exclude=exclude,
    )
    write_baseline(
        baseline_path, list(report.findings) + list(report.baselined)
    )
    return lint_tree(
        root,
        baseline_path=baseline_path,
        fingerprint_path=fingerprint_path,
        rules=rules,
        exclude=exclude,
    )
