"""Source loading and the AST facts shared by every lint rule.

:class:`SourceModule` parses one file once and precomputes everything the
rules keep asking for: the import alias map (so ``np.random.default_rng``
resolves to ``numpy.random.default_rng`` whatever the module called
``numpy``), the enclosing-symbol intervals (for finding attribution and
baseline keys), the ``# lint: allow[RULE]`` suppression table, and the set
of :func:`repro.lint.contracts.kernel`-marked function bodies.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

__all__ = [
    "KernelFunction",
    "Project",
    "SourceModule",
    "dotted_parts",
    "load_project",
]

#: ``# lint: allow[RNG001]`` / ``# lint: allow[KRN001, KRN002]`` /
#: ``# lint: allow[*]`` — same line or the line directly above the finding.
#: The tag may sit anywhere inside the comment, so the idiomatic
#: ``# <reason>. lint: allow[RULE]`` one-liner works.
_SUPPRESS_RE = re.compile(r"#.*?\blint:\s*allow\[\s*([A-Za-z0-9_*,\s]+?)\s*\]")

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass(frozen=True)
class KernelFunction:
    """One ``@kernel``-marked function body inside a module."""

    qualname: str
    node: ast.AST
    line: int
    end_line: int

    def covers(self, line: int) -> bool:
        return self.line <= line <= self.end_line


@dataclass
class SourceModule:
    """One parsed source file plus the precomputed lint facts."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.Module] = None
    parse_error: Optional[str] = None
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)
    symbols: List[Tuple[int, int, str]] = field(default_factory=list)
    kernels: List[KernelFunction] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        module = cls(path=path, rel=rel, text=text, lines=text.splitlines())
        module._scan_suppressions()
        try:
            module.tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            module.parse_error = (
                f"{error.msg} (line {error.lineno or 0})"
            )
            return module
        module._scan_imports()
        module._scan_symbols()
        module._scan_kernels()
        return module

    # ------------------------------------------------------------- scanning
    def _scan_suppressions(self) -> None:
        for number, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = frozenset(
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if rules:
                self.suppressions[number] = rules

    def _scan_imports(self) -> None:
        assert self.tree is not None
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.imports[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = f"{node.module}.{alias.name}"

    def _scan_symbols(self) -> None:
        assert self.tree is not None

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SCOPE_NODES):
                    qualname = (
                        f"{prefix}.{child.name}" if prefix else child.name
                    )
                    end = getattr(child, "end_lineno", None) or child.lineno
                    self.symbols.append((child.lineno, end, qualname))
                    visit(child, qualname)
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        self.symbols.sort()

    def _scan_kernels(self) -> None:
        assert self.tree is not None
        for node in ast.walk(self.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            for decorator in node.decorator_list:
                target = decorator.func if isinstance(
                    decorator, ast.Call
                ) else decorator
                parts = dotted_parts(target)
                if parts and parts[-1] == "kernel":
                    self.kernels.append(
                        KernelFunction(
                            qualname=self.symbol_at(node.lineno),
                            node=node,
                            line=node.lineno,
                            end_line=getattr(node, "end_lineno", node.lineno)
                            or node.lineno,
                        )
                    )
                    break
        self.kernels.sort(key=lambda kernel: kernel.line)

    # -------------------------------------------------------------- queries
    def resolve_call(self, func: ast.expr) -> Optional[str]:
        """Dotted name of a call target with import aliases substituted.

        ``np.random.default_rng`` (under ``import numpy as np``) resolves to
        ``numpy.random.default_rng``; a bare ``default_rng`` imported with
        ``from numpy.random import default_rng`` resolves to the same.
        Attribute chains rooted at expressions (``self._rng.normal``) have
        no static module root and resolve to ``None``.
        """
        parts = dotted_parts(func)
        if not parts:
            return None
        mapped = self.imports.get(parts[0])
        if mapped is not None:
            parts = mapped.split(".") + parts[1:]
        return ".".join(parts)

    def symbol_at(self, line: int) -> str:
        """Qualified name of the innermost definition containing ``line``."""
        best = ""
        best_span = None
        for start, end, qualname in self.symbols:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best = qualname
                    best_span = span
        return best

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def kernel_at(self, line: int) -> Optional[KernelFunction]:
        """Innermost kernel function whose body spans ``line``, if any."""
        best: Optional[KernelFunction] = None
        for kernel in self.kernels:
            if kernel.covers(line) and (
                best is None or kernel.line >= best.line
            ):
                best = kernel
        return best

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment allows this finding.

        A suppression applies to findings on its own physical line and on
        the line directly below it, so both inline comments and a
        comment-only line above the offending statement work.
        """
        for line in (finding.line, finding.line - 1):
            rules = self.suppressions.get(line)
            if rules and ("*" in rules or finding.rule in rules):
                return True
        return False

    def finding(
        self,
        node: ast.AST,
        rule: str,
        severity: str,
        message: str,
    ) -> Finding:
        """Build a finding anchored at an AST node of this module."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            path=self.rel,
            line=line,
            column=column + 1,
            rule=rule,
            severity=severity,
            message=message,
            symbol=self.symbol_at(line),
            snippet=self.snippet_at(line),
        )


@dataclass
class Project:
    """Every parsed module under one linted root."""

    root: Path
    modules: List[SourceModule]
    fingerprint_path: Optional[Path] = None

    def module_ending(self, suffix: str) -> Optional[SourceModule]:
        """The unique module whose relative path ends with ``suffix``."""
        for module in self.modules:
            if module.rel == suffix or module.rel.endswith("/" + suffix):
                return module
        return None

    def kernel_count(self) -> int:
        return sum(len(module.kernels) for module in self.modules)

    def iter_parsed(self) -> Iterator[SourceModule]:
        for module in self.modules:
            if module.tree is not None:
                yield module


def load_project(
    root: Path,
    fingerprint_path: Optional[Path] = None,
    exclude: Sequence[str] = (),
) -> Project:
    """Parse every ``*.py`` under ``root`` (sorted, deterministic order)."""
    root = Path(root)
    modules: List[SourceModule] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(rel == name or rel.startswith(name + "/") for name in exclude):
            continue
        modules.append(SourceModule.load(path, rel))
    return Project(
        root=root, modules=modules, fingerprint_path=fingerprint_path
    )
