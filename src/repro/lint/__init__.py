"""Contract-aware static analysis for the simulation engine.

The engine's headline guarantees — bit-identical parity across the object,
columnar and macro-stepped backends, and deterministic per-seed fast-mode
streams — rest on *source-level* contracts that no runtime check sees until
an expensive parity sweep diverges:

* every random draw must flow from :class:`repro.sim.rng.RandomStreams`
  (one stray ``np.random.default_rng()`` silently forks the stream);
* fast-mode child-stream labels must be unique per subsystem, or two draw
  sites share (and therefore correlate) a stream;
* hot-path kernels must stay *pure*: no wall-clock reads, no RNG draws
  whose occurrence depends on data-dependent branches, no iteration over
  unordered containers;
* any change to the :class:`~repro.sim.scenario.Scenario` or
  :class:`~repro.config.SimulationParameters` field set must bump the
  result-store ``SCHEMA_VERSION``.

This package enforces those contracts at lint time with a stdlib-``ast``
analyzer (no third-party dependencies): a rule registry
(:mod:`repro.lint.rules`), inline suppressions (``# lint: allow[RULE]``),
a committed baseline for grandfathered findings
(:mod:`repro.lint.baseline`) and text/JSON reporters
(:mod:`repro.lint.reporters`).  Run it as ``python -m repro lint``; the
tier-1 suite gates on a clean tree via ``tests/lint/test_self_clean.py``.
"""

from repro.lint.analyzer import Project, SourceModule, load_project
from repro.lint.contracts import KERNEL_ATTR, is_kernel, kernel
from repro.lint.findings import Finding, SEVERITIES
from repro.lint.runner import (
    LintReport,
    default_baseline_path,
    default_fingerprint_path,
    default_root,
    lint_tree,
    update_baseline,
)

__all__ = [
    "Finding",
    "KERNEL_ATTR",
    "LintReport",
    "Project",
    "SEVERITIES",
    "SourceModule",
    "default_baseline_path",
    "default_fingerprint_path",
    "default_root",
    "is_kernel",
    "kernel",
    "lint_tree",
    "load_project",
    "update_baseline",
]
