"""The contract rules and their registry.

Every rule receives the whole :class:`~repro.lint.analyzer.Project` — most
work module-locally, but RNG002 (label uniqueness) and SCH001 (schema
fingerprint) are inherently cross-module.  Rules yield
:class:`~repro.lint.findings.Finding` records; suppression and baseline
filtering happen in the runner, so a rule never needs to know about either.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.lint.analyzer import KernelFunction, Project, SourceModule
from repro.lint.findings import Finding
from repro.lint import schema as schema_mod

__all__ = ["Rule", "RULE_REGISTRY", "all_rules", "register"]


class Rule:
    """One contract check.  Subclasses set the class attributes and
    implement :meth:`check`."""

    id: str = ""
    severity: str = "error"
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules(only: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate the registered rules (optionally a subset), id-sorted."""
    wanted = set(only) if only is not None else None
    if wanted is not None:
        unknown = wanted - set(RULE_REGISTRY)
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
    return [
        rule_cls()
        for rule_id, rule_cls in sorted(RULE_REGISTRY.items())
        if wanted is None or rule_id in wanted
    ]


# --------------------------------------------------------------------- PARSE


@register
class ParseRule(Rule):
    """A file that does not parse cannot be vouched for by any other rule."""

    id = "LNT000"
    severity = "error"
    summary = "source file failed to parse"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.parse_error is not None:
                yield Finding(
                    path=module.rel, line=1, column=1, rule=self.id,
                    severity=self.severity,
                    message=f"syntax error: {module.parse_error}",
                )


# -------------------------------------------------------------------- RNG001

#: The one module allowed to construct generators: the RandomStreams home.
_RNG_SANCTUARY = "sim/rng.py"


@register
class RngSourceRule(Rule):
    """All randomness must flow from :class:`repro.sim.rng.RandomStreams`.

    Flags, outside ``sim/rng.py``: any call into ``numpy.random`` (module
    API *or* generator construction — ``default_rng``, ``SeedSequence``,
    legacy ``np.random.<dist>`` draws, ``np.random.seed``), calls to a bare
    ``default_rng`` imported from ``numpy.random``, and any import of the
    stdlib ``random`` module.  Type annotations and ``isinstance`` checks
    against ``np.random.Generator`` are attribute *references*, not calls,
    and are never flagged.
    """

    id = "RNG001"
    severity = "error"
    summary = "RNG constructed or drawn outside RandomStreams"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_parsed():
            if module.rel == _RNG_SANCTUARY or module.rel.endswith(
                "/" + _RNG_SANCTUARY
            ):
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.name == "random" or alias.name.startswith(
                            "random."
                        ):
                            yield module.finding(
                                node, self.id, self.severity,
                                "stdlib `random` imported; all draws must "
                                "flow from repro.sim.rng.RandomStreams",
                            )
                elif isinstance(node, ast.ImportFrom):
                    if node.module == "random" and not node.level:
                        yield module.finding(
                            node, self.id, self.severity,
                            "stdlib `random` imported; all draws must flow "
                            "from repro.sim.rng.RandomStreams",
                        )
                elif isinstance(node, ast.Call):
                    name = module.resolve_call(node.func)
                    if name is None:
                        continue
                    if name.startswith("numpy.random.") or name.startswith(
                        "random."
                    ):
                        yield module.finding(
                            node, self.id, self.severity,
                            f"`{name}(...)` bypasses RandomStreams; inject "
                            "a generator derived from the run's master seed "
                            "(repro.sim.rng) instead",
                        )


# -------------------------------------------------------------------- RNG002


@register
class StreamLabelRule(Rule):
    """Fast-mode child-stream labels must be unique per call site.

    Two distinct ``streams.child(name, label)`` (or
    ``child_stream(seq, label)``) call sites sharing one literal label get
    the *same* generator, silently correlating draws that the fast-mode
    statistical-equivalence argument assumes independent.  Non-literal
    labels cannot be checked statically and are surfaced as notes.
    """

    id = "RNG002"
    severity = "error"
    summary = "duplicate child-stream label"

    def check(self, project: Project) -> Iterator[Finding]:
        sites: Dict[Tuple[str, str], List[Tuple[SourceModule, ast.Call]]] = {}
        notes: List[Finding] = []
        for module in project.iter_parsed():
            if module.rel == _RNG_SANCTUARY or module.rel.endswith(
                "/" + _RNG_SANCTUARY
            ):
                continue  # the derivation helper itself takes label params
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                key = self._site_key(module, node)
                if key is None:
                    continue
                stream, label = key
                if label is None:
                    notes.append(
                        module.finding(
                            node, self.id, "note",
                            "child-stream label is not a string literal; "
                            "uniqueness cannot be checked statically",
                        )
                    )
                    continue
                sites.setdefault((stream, label), []).append((module, node))
        for (stream, label), occurrences in sorted(sites.items()):
            if len(occurrences) < 2:
                continue
            first_module, first_node = occurrences[0]
            anchor = f"{first_module.rel}:{first_node.lineno}"
            for module, node in occurrences[1:]:
                yield module.finding(
                    node, self.id, self.severity,
                    f"child-stream label ({stream!r}, {label!r}) is already "
                    f"used at {anchor}; each draw site needs its own label "
                    "or the two sites share (and correlate) a stream",
                )
        yield from notes

    @staticmethod
    def _site_key(
        module: SourceModule, node: ast.Call
    ) -> Optional[Tuple[str, Optional[str]]]:
        """(stream, label) of a child-derivation call; None if not one.

        ``label is None`` means the call *is* a derivation site but its
        label is not a string literal.
        """
        func = node.func
        label_node: Optional[ast.expr] = None
        stream = "?"
        if isinstance(func, ast.Attribute) and func.attr == "child":
            if len(node.args) >= 2:
                stream_node, label_node = node.args[0], node.args[1]
                if isinstance(stream_node, ast.Constant) and isinstance(
                    stream_node.value, str
                ):
                    stream = stream_node.value
            else:
                return None
        else:
            name = module.resolve_call(func)
            if name is None or not name.endswith("child_stream"):
                return None
            if len(node.args) >= 2:
                stream = "child_stream"
                label_node = node.args[1]
            else:
                return None
        if isinstance(label_node, ast.Constant) and isinstance(
            label_node.value, str
        ):
            return stream, label_node.value
        return stream, None


# ------------------------------------------------------------ KRN001/KRN002

#: numpy.random.Generator draw methods (order- and count-sensitive).
_DRAW_METHODS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "integers", "laplace", "logistic", "lognormal", "multinomial",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "normal", "pareto", "permutation", "permuted", "poisson", "power",
        "random", "rayleigh", "shuffle", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_normal",
        "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
    }
)

#: Wall-clock value sources: forbidden anywhere in simulation sources.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Monotonic/CPU timers: allowed only behind the ``repro.obs.clock`` seam
#: (which carries its own scoped suppressions), forbidden raw everywhere
#: else — and forbidden in kernels even through the seam.
_KERNEL_CLOCKS = frozenset(
    {
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    }
)

#: Observability timing entry points — instrumentation glue that reads the
#: monotonic clock.  Legal anywhere *except* inside ``@kernel`` bodies,
#: where a span bracket would smuggle a timer into the purity perimeter.
_OBS_TIMING_NAMES = frozenset({"repro.obs.span", "repro.obs.tracing"})
_OBS_TIMING_PREFIXES = ("repro.obs.clock.", "repro.obs.trace.")


def _is_constant_test(test: ast.expr) -> bool:
    """Whether a branch test is compile-time constant (feature-flag style)."""
    if isinstance(test, ast.Constant):
        return True
    if isinstance(test, ast.Name) and test.id in ("True", "False"):
        return True  # pre-3.8 AST compatibility spelling
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _is_constant_test(test.operand)
    return False


def _unordered_iter_reason(
    module: SourceModule, iter_node: ast.expr
) -> Optional[str]:
    """Why iterating ``iter_node`` has data-dependent order, if it does."""
    if isinstance(iter_node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(iter_node, (ast.Dict, ast.DictComp)):
        return "a dict literal/comprehension"
    if isinstance(iter_node, ast.Call):
        name = module.resolve_call(iter_node.func)
        if name in ("set", "frozenset"):
            return f"`{name}(...)`"
        func = iter_node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "keys", "values", "items"
        ):
            return f"dict `.{func.attr}()`"
    return None


@register
class KernelBranchedDrawRule(Rule):
    """Kernels must not make RNG draws under data-dependent branches, nor
    iterate unordered containers.

    The number and order of draws a kernel takes from its stream is part of
    the cross-backend parity contract; a draw gated by simulation state
    desynchronises the stream between backends the moment the gate differs.
    Set/dict iteration makes emission order depend on hashing/insertion
    history — kernels iterate arrays, lists or ``sorted(...)`` views.
    Deliberate, parity-preserving gates must carry an explicit
    ``# lint: allow[KRN001]`` stating why the draw order is safe.
    """

    id = "KRN001"
    severity = "error"
    summary = "impure draw or unordered iteration in a @kernel body"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_parsed():
            for kernel in module.kernels:
                yield from self._check_kernel(module, kernel)

    def _check_kernel(
        self, module: SourceModule, kernel: KernelFunction
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def scan(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(child, (ast.If, ast.While)):
                    child_depth = depth + (
                        0 if _is_constant_test(child.test) else 1
                    )
                elif isinstance(child, ast.IfExp):
                    child_depth = depth + (
                        0 if _is_constant_test(child.test) else 1
                    )
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and child is not kernel.node:
                    continue  # nested defs are their own (unmarked) scope
                if isinstance(child, ast.Call):
                    func = child.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _DRAW_METHODS
                        and child_depth > 0
                    ):
                        findings.append(
                            module.finding(
                                child, self.id, self.severity,
                                f"RNG draw `.{func.attr}(...)` under a "
                                "data-dependent branch in kernel "
                                f"`{kernel.qualname}`: the draw count/order "
                                "must not depend on simulation state "
                                "(suppress with a reason if the gate "
                                "mirrors the object backend's order)",
                            )
                        )
                if isinstance(child, (ast.For, ast.AsyncFor)):
                    reason = _unordered_iter_reason(module, child.iter)
                    if reason is not None:
                        findings.append(
                            module.finding(
                                child, self.id, self.severity,
                                f"kernel `{kernel.qualname}` iterates "
                                f"{reason}: emission order depends on "
                                "hashing/insertion history; iterate an "
                                "array, list or `sorted(...)` view",
                            )
                        )
                scan(child, child_depth)

        scan(kernel.node, 0)
        yield from findings


@register
class KernelClockRule(Rule):
    """No wall clocks in simulation sources; no timers at all in kernels.

    Wall-clock reads (``time.time``, ``datetime.now``, ...) are
    nondeterministic inputs and are flagged anywhere under the linted tree
    — provenance metadata (e.g. the store's ``saved_unix``) is exempt from
    the determinism contract and carries a scoped suppression instead.
    Monotonic/CPU timers are flagged everywhere too: timing belongs behind
    the :mod:`repro.obs.clock` seam, the tree's single timing sanctuary
    (its own raw reads carry reasoned suppressions).  Inside ``@kernel``
    bodies not even the seam is allowed — span brackets, tracer calls and
    ``repro.obs.clock`` reads are all flagged there, because any timer in a
    kernel body breaks the "simulated time is the only clock" purity
    contract.  Metrics counters (:mod:`repro.obs.metrics`) read no clock
    and stay legal in kernels.
    """

    id = "KRN002"
    severity = "error"
    summary = "wall-clock/timer call in simulation code"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_parsed():
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = module.resolve_call(node.func)
                if name is None:
                    continue
                kernel = module.kernel_at(node.lineno)
                if name in _WALL_CLOCK:
                    where = (
                        f"kernel `{kernel.qualname}`"
                        if kernel is not None
                        else "simulation code"
                    )
                    yield module.finding(
                        node, self.id, self.severity,
                        f"wall-clock read `{name}()` in {where}: "
                        "nondeterministic input; simulated time is the only "
                        "clock (suppress with a reason for provenance "
                        "metadata)",
                    )
                elif name in _KERNEL_CLOCKS:
                    if kernel is not None:
                        yield module.finding(
                            node, self.id, self.severity,
                            f"timer `{name}()` inside kernel "
                            f"`{kernel.qualname}`: kernels must not read "
                            "any clock; hoist timing to the caller",
                        )
                    else:
                        yield module.finding(
                            node, self.id, self.severity,
                            f"raw timer `{name}()`: route timing through "
                            "`repro.obs.clock` (the single suppressed "
                            "sanctuary) so tests can virtualise the clock "
                            "in one place",
                        )
                elif kernel is not None and (
                    name in _OBS_TIMING_NAMES
                    or name.startswith(_OBS_TIMING_PREFIXES)
                ):
                    yield module.finding(
                        node, self.id, self.severity,
                        f"observability timing call `{name}(...)` inside "
                        f"kernel `{kernel.qualname}`: spans and clock reads "
                        "are timers and must stay outside kernel bodies "
                        "(metrics counters are fine — they read no clock)",
                    )


# -------------------------------------------------------------------- ACC001

_FN_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _function_params(node: ast.AST) -> List[str]:
    """Positional parameter names of a function def, in declaration order."""
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _unwrap_passthrough(node: ast.expr) -> ast.expr:
    """Strip layout/cast wrappers (``np.ascontiguousarray(x)``, ``int(x)``,
    ...) down to the innermost first argument — the value actually routed."""
    while isinstance(node, ast.Call) and node.args and not node.keywords:
        node = node.args[0]
    return node


@register
class AccelTwinDriftRule(Rule):
    """Numba twins must mirror their NumPy fallbacks exactly.

    ``repro.accel`` defines every kernel twice: the always-available NumPy
    fallback first, then — inside the ``if HAS_NUMBA:`` block — a
    same-named ``@kernel`` wrapper delegating to an ``@numba.njit``
    implementation (conventionally ``_<name>_jit``).  The parity contract
    ("identical results whether or not numba is installed") silently breaks
    when the two twins drift: a parameter renamed or reordered on one side
    only, or a wrapper passing its arguments to the jit implementation in a
    different order than it received them.  Nothing at runtime catches this
    on a machine without numba — the fallback masks the broken twin — so
    the drift is a source contract, checked here.

    Flags, in any module with a ``HAS_NUMBA``-gated block:

    * a gated ``@kernel`` twin with no same-named fallback defined before
      the gate (a twin nothing vouches parity for);
    * twin/fallback positional-parameter name or order mismatch;
    * a ``_<name>_jit`` implementation whose positional parameters do not
      mirror the fallback's;
    * a twin wrapper whose single ``*_jit`` delegation call passes a
      wrong number of arguments or routes a parameter out of position
      (layout/cast wrappers like ``np.ascontiguousarray`` are unwrapped
      before comparing).
    """

    id = "ACC001"
    severity = "error"
    summary = "accel numba twin drifted from its NumPy fallback"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_parsed():
            assert module.tree is not None
            gated = [
                node
                for node in module.tree.body
                if isinstance(node, ast.If)
                and self._is_has_numba_test(node.test)
            ]
            if not gated:
                continue
            gated_lines = {
                line
                for node in gated
                for line in range(
                    node.lineno, (node.end_lineno or node.lineno) + 1
                )
            }
            fallbacks = {
                k.qualname.rsplit(".", 1)[-1]: k
                for k in module.kernels
                if k.line not in gated_lines
            }
            twins = [k for k in module.kernels if k.line in gated_lines]
            jit_impls = {
                node.name: node
                for gate in gated
                for node in gate.body
                if isinstance(node, _FN_NODES) and node.name.endswith("_jit")
            }
            for twin in twins:
                yield from self._check_twin(module, twin, fallbacks)
            for name, impl in sorted(jit_impls.items()):
                fallback = fallbacks.get(name[1:-4] if
                                         name.startswith("_") else name[:-4])
                if fallback is None:
                    continue  # private helper with no 1:1 fallback
                impl_params = _function_params(impl)
                fb_params = _function_params(fallback.node)
                if impl_params != fb_params:
                    yield module.finding(
                        impl, self.id, self.severity,
                        f"jit implementation `{name}` takes "
                        f"({', '.join(impl_params)}) but the NumPy fallback "
                        f"`{fallback.qualname}` takes "
                        f"({', '.join(fb_params)}): the twins must mirror "
                        "each other parameter-for-parameter",
                    )

    def _check_twin(
        self,
        module: SourceModule,
        twin: KernelFunction,
        fallbacks: Dict[str, KernelFunction],
    ) -> Iterator[Finding]:
        name = twin.qualname.rsplit(".", 1)[-1]
        fallback = fallbacks.get(name)
        if fallback is None:
            yield module.finding(
                twin.node, self.id, self.severity,
                f"gated kernel `{twin.qualname}` has no NumPy fallback "
                "defined before the HAS_NUMBA block: without the fallback "
                "twin, machines lacking numba lose the kernel entirely",
            )
            return
        params = _function_params(twin.node)
        fb_params = _function_params(fallback.node)
        if params != fb_params:
            yield module.finding(
                twin.node, self.id, self.severity,
                f"numba twin `{twin.qualname}` takes ({', '.join(params)}) "
                f"but its NumPy fallback (line {fallback.line}) takes "
                f"({', '.join(fb_params)}): signatures must match exactly",
            )
            return
        jit_calls = [
            node
            for node in ast.walk(twin.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id.endswith("_jit")
        ]
        if len(jit_calls) != 1:
            return  # no single delegation call to vouch for statically
        call = jit_calls[0]
        routed = [_unwrap_passthrough(arg) for arg in call.args]
        if len(routed) != len(params) or call.keywords:
            yield module.finding(
                call, self.id, self.severity,
                f"numba twin `{twin.qualname}` passes {len(routed)} "
                f"positional argument(s) to `{call.func.id}` but declares "
                f"{len(params)} parameter(s): every parameter must be "
                "routed through, positionally and in order",
            )
            return
        for position, (routed_arg, param) in enumerate(zip(routed, params)):
            if isinstance(routed_arg, ast.Name) and routed_arg.id != param:
                yield module.finding(
                    routed_arg, self.id, self.severity,
                    f"numba twin `{twin.qualname}` routes `{routed_arg.id}` "
                    f"into `{call.func.id}` at position {position}, where "
                    f"the fallback expects `{param}`: argument order "
                    "drifted between the twins",
                )

    @staticmethod
    def _is_has_numba_test(test: ast.expr) -> bool:
        if isinstance(test, ast.Name):
            return test.id == "HAS_NUMBA"
        if isinstance(test, ast.Attribute):
            return test.attr == "HAS_NUMBA"
        return False


# -------------------------------------------------------------------- FLT001

#: Path fragments whose modules form the fault-tolerance perimeter: the
#: executor retry paths, the store-backed executors and the fleet/faults
#: subsystems, where a swallowed exception silently loses a point.
_FLT_PATHS = (
    "api/executors.py",
    "store/scheduler.py",
    "store/caching.py",
    "fleet/",
    "faults/",
)

_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad_handler(module: SourceModule,
                      handler: ast.ExceptHandler) -> bool:
    """Whether a handler catches ``Exception``/``BaseException`` (or all)."""
    if handler.type is None:
        return True  # bare `except:`
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = module.resolve_call(node)
        if name is None:
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
        if name is not None and name.rsplit(".", 1)[-1] in (
            _BROAD_EXCEPTION_NAMES
        ):
            return True
    return False


@register
class FaultSwallowRule(Rule):
    """Broad exception handlers on the fault-tolerance perimeter must
    re-raise or record.

    The retry/degradation contract says every point is *accounted for*: a
    failure either propagates (``raise``), or is recorded somewhere a
    caller can see it (the bound exception passed into a call — a
    ``FailedPoint`` constructor, ``service.fail(...)``, an error list).  A
    broad ``except Exception`` whose handler does neither silently loses
    the point, which is exactly the bug class the fault-injection suite
    exists to catch.  Scoped to the executor retry paths and the
    fleet/faults subsystems; narrow handlers (``except KeyError``) are
    out of scope.  Deliberate swallows (e.g. best-effort cleanup) must
    carry an explicit ``# lint: allow[FLT001]`` stating why losing the
    exception is safe.
    """

    id = "FLT001"
    severity = "error"
    summary = "broad except swallows a fault on the retry/fleet path"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.iter_parsed():
            if not any(fragment in module.rel for fragment in _FLT_PATHS):
                continue
            assert module.tree is not None
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if not _is_broad_handler(module, node):
                    continue
                if self._handler_accounts(node):
                    continue
                caught = (
                    "bare `except:`" if node.type is None
                    else "broad `except "
                         f"{ast.unparse(node.type)}`"
                )
                yield module.finding(
                    node, self.id, self.severity,
                    f"{caught} neither re-raises nor records the "
                    "exception: on the fault-tolerance perimeter every "
                    "failure must propagate or be passed into a recording "
                    "call, or the point is silently lost",
                )

    @staticmethod
    def _handler_accounts(handler: ast.ExceptHandler) -> bool:
        """Whether the handler re-raises or records the bound exception.

        "Records" means the bound name (``except ... as err``) appears
        somewhere inside a call's arguments — handed to a constructor,
        an ``append``, a ``fail(...)`` — where a caller can observe it.
        Nested function definitions are skipped: a ``raise`` in a closure
        is not executed by the handler.
        """
        bound = handler.name

        def scan(node: ast.AST) -> bool:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return False
            if isinstance(node, ast.Raise):
                return True
            if bound is not None and isinstance(node, ast.Call):
                for arg in (*node.args, *node.keywords):
                    for name in ast.walk(
                        arg.value if isinstance(arg, ast.keyword) else arg
                    ):
                        if isinstance(name, ast.Name) and name.id == bound:
                            return True
            return any(scan(child) for child in ast.iter_child_nodes(node))

        return any(scan(statement) for statement in handler.body)


# -------------------------------------------------------------------- SCH001


@register
class SchemaFingerprintRule(Rule):
    """Scenario/parameter field changes must bump ``SCHEMA_VERSION``.

    Compares the AST fingerprint of the schema dataclasses against the
    committed ``schema_fingerprint.json``.  Drift while ``SCHEMA_VERSION``
    is unchanged is an error; drift *after* a bump only needs
    ``--update-baseline`` to re-record the pair and is surfaced as a note.
    """

    id = "SCH001"
    severity = "error"
    summary = "schema fields drifted without a SCHEMA_VERSION bump"

    def check(self, project: Project) -> Iterator[Finding]:
        fields = schema_mod.extract_schema_fields(project)
        if fields is None:
            return  # nothing schema-bearing under this root (fixture tree)
        anchor_module = None
        for _, suffix in schema_mod.SCHEMA_CLASSES:
            anchor_module = project.module_ending(suffix)
            if anchor_module is not None:
                break
        assert anchor_module is not None
        current = schema_mod.schema_fingerprint(fields)
        version = schema_mod.extract_schema_version(project)

        if project.fingerprint_path is None:
            return  # fingerprint checking disabled for this run
        recorded = schema_mod.load_recorded_fingerprint(
            project.fingerprint_path
        )
        if recorded is None:
            yield Finding(
                path=anchor_module.rel, line=1, column=1, rule=self.id,
                severity=self.severity,
                message=(
                    "no committed schema fingerprint at "
                    f"{project.fingerprint_path}; run `python -m repro lint "
                    "--update-baseline` to record the current schema"
                ),
            )
            return
        if current == recorded["fingerprint"]:
            if version is not None and version != recorded["schema_version"]:
                yield Finding(
                    path=anchor_module.rel, line=1, column=1, rule=self.id,
                    severity="note",
                    message=(
                        f"SCHEMA_VERSION is {version} but the committed "
                        f"fingerprint was recorded against "
                        f"{recorded['schema_version']}; run "
                        "`--update-baseline` to re-record"
                    ),
                )
            return
        changed = self._describe_drift(fields, recorded)
        if version is not None and version != recorded["schema_version"]:
            yield Finding(
                path=anchor_module.rel, line=1, column=1, rule=self.id,
                severity="note",
                message=(
                    "schema fields changed and SCHEMA_VERSION was bumped "
                    f"({recorded['schema_version']} -> {version}); run "
                    "`python -m repro lint --update-baseline` to re-record "
                    f"the fingerprint ({changed})"
                ),
            )
            return
        yield Finding(
            path=anchor_module.rel, line=1, column=1, rule=self.id,
            severity=self.severity,
            message=(
                f"schema fields changed ({changed}) but SCHEMA_VERSION is "
                f"still {recorded['schema_version']}: cached results would "
                "deserialise against the wrong field set; bump "
                "SCHEMA_VERSION in repro.store.serialization, then run "
                "`--update-baseline`"
            ),
        )

    @staticmethod
    def _describe_drift(
        fields: Dict[str, List[Dict[str, str]]], recorded: Dict[str, object]
    ) -> str:
        """Human-readable summary of which fields were added/removed."""
        recorded_fields = recorded.get("fields")
        if not isinstance(recorded_fields, dict):
            return "field details unavailable"
        pieces: List[str] = []
        for class_name, entries in sorted(fields.items()):
            now = {entry["name"] for entry in entries}
            raw_before = recorded_fields.get(class_name, [])
            before = (
                {str(name) for name in raw_before}
                if isinstance(raw_before, list)
                else set()
            )
            added = sorted(now - before)
            removed = sorted(before - now)
            if added:
                pieces.append(f"{class_name} += {', '.join(added)}")
            if removed:
                pieces.append(f"{class_name} -= {', '.join(removed)}")
        return (
            "; ".join(pieces)
            if pieces
            else "field annotations or defaults changed"
        )
