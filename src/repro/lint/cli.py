"""Argument wiring for ``python -m repro lint``.

Kept inside the lint package so :mod:`repro.cli` only needs two calls:
:func:`add_arguments` on its subparser and :func:`run_from_args` in the
handler.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

from repro.lint.runner import LintReport, lint_tree, update_baseline

__all__ = ["add_arguments", "run_from_args"]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--update-baseline", action="store_true", dest="update_baseline",
        help="re-record the schema fingerprint and grandfather the current "
             "findings into the committed baseline, then re-lint",
    )
    parser.add_argument(
        "--root", type=Path, default=None, metavar="DIR",
        help="tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="baseline file (default: <root>/lint/baseline.json)",
    )
    parser.add_argument(
        "--fingerprint", type=Path, default=None, metavar="FILE",
        help="schema fingerprint file "
             "(default: <root>/lint/schema_fingerprint.json)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="ID", default=None,
        help="run only this rule id (repeatable)",
    )


def run_from_args(args: argparse.Namespace) -> int:
    from repro.lint.reporters import render_json, render_text

    report: LintReport
    if args.update_baseline:
        report = update_baseline(
            root=args.root,
            baseline_path=args.baseline,
            fingerprint_path=args.fingerprint,
            rules=args.rules,
        )
    else:
        report = lint_tree(
            root=args.root,
            baseline_path=args.baseline,
            fingerprint_path=args.fingerprint,
            rules=args.rules,
        )
    rendered: str = (
        render_json(report) if args.as_json else render_text(report)
    )
    print(rendered)
    return report.exit_code


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - direct use
    parser = argparse.ArgumentParser(prog="repro-lint")
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))
