"""Simulation platform: event kernel, frame engine, scenarios and runners.

This subpackage is the "common simulation platform" of the paper's Section 5:
it wires the channel models, the physical layers, the traffic sources and the
MAC protocols together and produces the metrics the evaluation reports.

* :mod:`repro.sim.des` — a generic discrete-event kernel (substrate);
* :mod:`repro.sim.engine` — the frame-synchronous TDMA engine;
* :mod:`repro.sim.scenario` / :mod:`repro.sim.results` — run descriptions and
  result containers;
* :mod:`repro.sim.runner` — the single-run entry point (grids and sweeps
  live in :mod:`repro.api`);
* :mod:`repro.sim.rng` — reproducible independent random streams.
"""

from repro.sim.des import DiscreteEventSimulator, Event, EventQueue
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.rng import RandomStreams
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

__all__ = [
    "DiscreteEventSimulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "Scenario",
    "SimulationResult",
    "SweepResult",
    "UplinkSimulationEngine",
    "run_simulation",
]
