"""Reproducible, independent random-number streams.

Every stochastic component of the simulation — the channel fading, the
traffic sources, the MAC contention decisions, the packet error draws —
draws from its *own* NumPy generator, all derived from a single master seed
through :class:`numpy.random.SeedSequence` spawning.  This gives

* reproducibility: one integer seed fully determines a run;
* common random numbers across protocols: comparing two protocols under the
  same seed exposes them to identical channel and traffic realisations, a
  classic variance-reduction technique for paired comparisons;
* statistical independence between streams, so e.g. the number of contention
  draws a protocol makes cannot perturb the channel realisation.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams", "STREAM_NAMES", "child_stream"]

#: The canonical stream names used by the engine, in spawning order.
STREAM_NAMES = ("channel", "traffic", "mac", "error", "csi")


def child_stream(seq: np.random.SeedSequence, label: str) -> np.random.Generator:
    """Derive a labelled, independent child generator from a seed sequence.

    The child's spawn key extends the parent's with a CRC of the label, so
    the derivation is deterministic (the same ``(seed, stream, label)``
    always yields the same generator), order-independent (unlike
    ``SeedSequence.spawn``, requesting ``"burst"`` before or after
    ``"toggle"`` changes nothing) and collision-free across labels for all
    practical purposes.  The fast RNG mode uses these per-subsystem children
    so each draw site can batch its frame's draws into a single call without
    perturbing any other site's stream.
    """
    key = zlib.crc32(label.encode("utf-8"))
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=seq.entropy, spawn_key=tuple(seq.spawn_key) + (key,)
        )
    )


class RandomStreams:
    """Named independent random generators derived from one master seed.

    Parameters
    ----------
    seed:
        Master seed of the run.
    names:
        Stream names to create; defaults to :data:`STREAM_NAMES`.
    spawn_key:
        Optional spawn-key prefix for the root seed sequence.  The empty
        default reproduces the classic single-cell derivation exactly; a
        constellation shard passes a beam-specific key so every beam's
        streams are mutually independent while beam 0 (empty key) remains
        bit-identical to a plain single-cell run under the same seed.
    """

    def __init__(self, seed: int, names=STREAM_NAMES, spawn_key=()) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self._seed = int(seed)
        self._spawn_key = tuple(int(k) for k in spawn_key)
        names = tuple(names)
        if len(names) != len(set(names)):
            raise ValueError("stream names must be unique")
        root = np.random.SeedSequence(self._seed, spawn_key=self._spawn_key)
        children = root.spawn(len(names))
        self._sequences: Dict[str, np.random.SeedSequence] = dict(zip(names, children))
        self._streams: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child) for name, child in zip(names, children)
        }

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    @property
    def spawn_key(self) -> tuple:
        """Spawn-key prefix of the root sequence (empty for plain runs)."""
        return self._spawn_key

    @property
    def names(self) -> tuple:
        """Names of the available streams."""
        return tuple(self._streams)

    def child(self, name: str, label: str) -> np.random.Generator:
        """A labelled independent child generator of the named stream.

        Children are what the fast RNG mode hands to batched draw sites
        (e.g. ``child("traffic", "toggle")``): statistically independent of
        the parent stream and of every other label, and reproducible from
        ``(seed, name, label)`` alone.
        """
        if name not in self._sequences:
            raise KeyError(
                f"unknown stream {name!r}; available: {', '.join(self._streams)}"
            )
        return child_stream(self._sequences[name], label)

    def __getitem__(self, name: str) -> np.random.Generator:
        if name not in self._streams:
            raise KeyError(
                f"unknown stream {name!r}; available: {', '.join(self._streams)}"
            )
        return self._streams[name]

    def __getattr__(self, name: str) -> np.random.Generator:
        streams = self.__dict__.get("_streams", {})
        if name in streams:
            return streams[name]
        raise AttributeError(name)
