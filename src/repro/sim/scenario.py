"""Scenario descriptions: what a single simulation run looks like."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import SimulationParameters

__all__ = ["Scenario"]


@dataclass(frozen=True)
class Scenario:
    """One cell, one protocol, one traffic mix, one seed.

    Attributes
    ----------
    protocol:
        Registry name of the protocol under test (``"charisma"``,
        ``"dtdma_vr"``, ``"dtdma_fr"``, ``"drma"``, ``"rama"``, ``"rmav"``).
    n_voice:
        Number of voice terminals in the cell.
    n_data:
        Number of data terminals in the cell.
    use_request_queue:
        Whether the base station keeps the optional request queue.
    duration_s:
        Measured simulation time (after warm-up), in seconds.
    warmup_s:
        Warm-up period whose statistics are discarded, in seconds.
    seed:
        Master seed of the run's random streams.
    mobile_speed_kmh:
        Optional override of the population's mobile speed (the Section 5.3.3
        speed ablation); ``None`` keeps the parameter default.
    engine_backend:
        Simulation-core implementation: ``"columnar"`` (default) drives the
        struct-of-arrays :class:`~repro.traffic.population.TerminalPopulation`
        kernels and the batched PHY; ``"object"`` walks per-terminal Python
        objects.  Both produce bit-identical results under a common seed
        (the columnar kernels preserve the RNG call order); the object
        backend is retained for differential testing.
    rng_mode:
        Random-draw batching contract of the columnar backend.  ``"parity"``
        (default) preserves the object backend's scalar RNG call order
        exactly, so both backends stay bit-identical under a common seed —
        the mode the differential suite and any paired cross-backend
        comparison must use.  ``"fast"`` relaxes the ordering: stochastic
        subsystems draw from independent per-subsystem child streams (see
        :func:`repro.sim.rng.child_stream`) and batch a whole frame's draws
        into single calls.  Fast-mode runs are statistically equivalent to
        parity-mode runs (seed-averaged metrics agree within confidence
        intervals; asserted by ``tests/sim/test_rng_fast_mode.py``) but not
        bit-identical, which is the right trade for paper-scale sweeps.
        Ignored by the object backend.
    macro_frames:
        Macro-stepping block size of the columnar backend's frame loop.
        ``1`` (default) advances frame by frame; larger values let the
        engine execute blocks of up to this many frames with fused
        multi-frame kernels — the traffic plan is drawn for the whole block
        up front, contention draws are served from a pre-drawn pool with
        exact roll-back/replay at the first state-changing event, and
        voice-reservation PHY outcomes are resolved in one batched draw per
        block.  Because every per-subsystem random stream is consumed in
        exactly the per-frame order, results are **bit-identical** to
        ``macro_frames=1`` in ``rng_mode="parity"`` (asserted by
        ``tests/sim/test_backend_parity.py`` for ``macro_frames`` in
        {1, 4, 16, 64}).  Ignored by the object backend and by the
        view-walking MAC path.
    """

    protocol: str
    n_voice: int
    n_data: int
    use_request_queue: bool = False
    duration_s: float = 10.0
    warmup_s: float = 1.0
    seed: int = 0
    mobile_speed_kmh: Optional[float] = None
    engine_backend: str = "columnar"
    rng_mode: str = "parity"
    macro_frames: int = 1

    def __post_init__(self) -> None:
        if not self.protocol:
            raise ValueError("protocol name must not be empty")
        if self.n_voice < 0 or self.n_data < 0:
            raise ValueError("population sizes must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.warmup_s < 0:
            raise ValueError("warmup_s must be non-negative")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.mobile_speed_kmh is not None and self.mobile_speed_kmh < 0:
            raise ValueError("mobile_speed_kmh must be non-negative")
        if self.engine_backend not in ("columnar", "object"):
            raise ValueError(
                f"engine_backend must be 'columnar' or 'object', "
                f"got {self.engine_backend!r}"
            )
        if self.rng_mode not in ("parity", "fast"):
            raise ValueError(
                f"rng_mode must be 'parity' or 'fast', got {self.rng_mode!r}"
            )
        if self.macro_frames < 1:
            raise ValueError("macro_frames must be at least 1")

    @property
    def n_terminals(self) -> int:
        """Total number of terminals in the cell."""
        return self.n_voice + self.n_data

    def measured_frames(self, params: SimulationParameters) -> int:
        """Number of measured frames implied by ``duration_s``."""
        return max(1, int(round(self.duration_s / params.frame_duration_s)))

    def warmup_frames(self, params: SimulationParameters) -> int:
        """Number of warm-up frames implied by ``warmup_s``."""
        return int(round(self.warmup_s / params.frame_duration_s))

    def with_overrides(self, **overrides) -> "Scenario":
        """Copy of the scenario with some fields replaced."""
        return replace(self, **overrides)

    def label(self) -> str:
        """Compact human-readable identifier used in tables and logs."""
        queue = "queue" if self.use_request_queue else "noqueue"
        return (
            f"{self.protocol}[Nv={self.n_voice},Nd={self.n_data},{queue},seed={self.seed}]"
        )
