"""Frame-synchronous uplink simulation engine.

:class:`UplinkSimulationEngine` is the common simulation platform all six
protocols are evaluated on (the paper implements its protocols "on a common
simulation platform" too).  Each call to :meth:`step` advances exactly one
2.5 ms TDMA frame:

1. every user's composite fading channel advances (vectorised);
2. every terminal generates traffic at the frame boundary and drops voice
   packets whose 20 ms deadline has expired;
3. the protocol under test runs its request and allocation phases and
   returns a :class:`~repro.mac.requests.FrameOutcome`;
4. the engine executes the granted transmissions through the packet error
   model — using the *current* channel state, so a transmission mode chosen
   from a stale CSI estimate pays the corresponding error penalty;
5. the metrics collector records the frame.

A warm-up period can be discarded so that measurements reflect steady state.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.channel.doppler import DopplerModel
from repro.channel.manager import ChannelManager, ChannelSnapshot
from repro.config import SimulationParameters
from repro.mac.base import MACProtocol
from repro.mac.registry import create_protocol
from repro.mac.requests import FrameOutcome
from repro.metrics.collector import MetricsCollector
from repro.phy.error_model import PacketErrorModel
from repro.sim.results import SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.scenario import Scenario
from repro.traffic.generator import build_population
from repro.traffic.terminal import Terminal

__all__ = ["UplinkSimulationEngine"]


class UplinkSimulationEngine:
    """Drives one scenario frame by frame.

    Parameters
    ----------
    scenario:
        The run description (protocol, traffic mix, queueing, seed, speed).
    params:
        The shared simulation parameters (Table 1).
    protocol:
        Optionally, a pre-built protocol instance (used by tests and
        ablations); by default the registry builds it, including its modem.
    """

    def __init__(
        self,
        scenario: Scenario,
        params: Optional[SimulationParameters] = None,
        protocol: Optional[MACProtocol] = None,
    ) -> None:
        self.scenario = scenario
        self.params = params if params is not None else SimulationParameters()
        self.streams = RandomStreams(scenario.seed)

        speed = (
            scenario.mobile_speed_kmh
            if scenario.mobile_speed_kmh is not None
            else self.params.mobile_speed_kmh
        )
        self.doppler = DopplerModel(speed_kmh=speed)
        self.channels = ChannelManager(
            n_users=scenario.n_terminals,
            doppler=self.doppler,
            frame_duration_s=self.params.frame_duration_s,
            rng=self.streams["channel"],
            shadow_std_db=self.params.shadow_std_db,
            shadow_mean_db=self.params.shadow_mean_db,
            shadow_decorrelation_s=self.params.shadow_decorrelation_s,
            mean_snr_db=self.params.mean_snr_db,
        )
        self.terminals: List[Terminal] = build_population(
            self.params, scenario.n_voice, scenario.n_data, self.streams["traffic"]
        )
        self._by_id: Dict[int, Terminal] = {t.terminal_id: t for t in self.terminals}

        if protocol is None:
            protocol = create_protocol(
                scenario.protocol,
                self.params,
                self.streams["mac"],
                use_request_queue=scenario.use_request_queue,
            )
        self.protocol = protocol
        self.error_model = PacketErrorModel(self.protocol.modem, self.streams["error"])
        self.collector = MetricsCollector(
            self.params, self.protocol.frame_structure.info_slots
        )
        self._frame_index = 0

    # ------------------------------------------------------------------ API
    @property
    def frame_index(self) -> int:
        """Number of frames simulated so far (including warm-up)."""
        return self._frame_index

    def step(self) -> FrameOutcome:
        """Advance the whole system by one TDMA frame."""
        frame = self._frame_index
        snapshot = self.channels.advance_frame()

        voice_losses_before = self._total_voice_losses()
        for terminal in self.terminals:
            terminal.advance_frame(frame)
            terminal.drop_expired(frame)

        outcome = self.protocol.run_frame(frame, self.terminals, snapshot)
        data_delivered = self._execute_allocations(outcome, snapshot, frame)

        voice_losses = self._total_voice_losses() - voice_losses_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        self._frame_index += 1
        return outcome

    def run(self) -> SimulationResult:
        """Run warm-up plus the measured period and return the results."""
        warmup = self.scenario.warmup_frames(self.params)
        measured = self.scenario.measured_frames(self.params)
        for _ in range(warmup):
            self.step()
        self._reset_statistics()
        for _ in range(measured):
            self.step()
        return self.collect_results()

    def collect_results(self) -> SimulationResult:
        """Aggregate the metrics collected since the last statistics reset."""
        return SimulationResult(
            scenario=self.scenario,
            voice=self.collector.voice_metrics(self.terminals),
            data=self.collector.data_metrics(self.terminals),
            mac=self.collector.mac_stats(),
        )

    # ------------------------------------------------------------ internals
    def _execute_allocations(
        self, outcome: FrameOutcome, snapshot: ChannelSnapshot, frame: int
    ) -> int:
        """Transmit the granted packets through the channel; return data deliveries."""
        data_delivered = 0
        for allocation in outcome.allocations:
            terminal = self._by_id.get(allocation.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            amplitude = snapshot.amplitude_of(allocation.terminal_id)
            n_to_send = min(allocation.packet_capacity, terminal.buffer_occupancy)
            delivered = self.error_model.transmit_packets(
                amplitude, n_to_send, throughput=allocation.throughput
            )
            taken = terminal.transmit(
                max_packets=allocation.packet_capacity,
                n_delivered=delivered,
                current_frame=frame,
            )
            if terminal.is_data:
                data_delivered += delivered
            # ``taken`` is only used for defensive consistency checking: the
            # terminal must never consume more packets than the grant allowed.
            assert taken <= allocation.packet_capacity
        return data_delivered

    def _total_voice_losses(self) -> int:
        return sum(
            t.stats.voice_dropped + t.stats.voice_errored
            for t in self.terminals
            if t.is_voice
        )

    def _reset_statistics(self) -> None:
        # Outcomes must be attributed to the same measurement window as the
        # generation events, or conservation (delivered + errored + dropped
        # <= generated) breaks whenever the warm-up leaves a backlog: deep
        # data-terminal buffers carry dozens of packets across the reset,
        # and their later deliveries would be counted against a generated
        # total that never included them.  begin_measurement() therefore
        # excludes packets created before the window from every outcome
        # counter (generated stays the pure in-window traffic, which also
        # keeps common-random-number traffic realisations comparable across
        # protocols).
        for terminal in self.terminals:
            terminal.begin_measurement(self._frame_index)
        self.collector.reset()
