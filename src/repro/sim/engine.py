"""Frame-synchronous uplink simulation engine.

:class:`UplinkSimulationEngine` is the common simulation platform all six
protocols are evaluated on (the paper implements its protocols "on a common
simulation platform" too).  Each call to :meth:`step` advances exactly one
2.5 ms TDMA frame:

1. every user's composite fading channel advances (vectorised);
2. every terminal generates traffic at the frame boundary and drops voice
   packets whose 20 ms deadline has expired;
3. the protocol under test runs its request and allocation phases and
   returns a :class:`~repro.mac.requests.FrameOutcome`;
4. the engine executes the granted transmissions through the packet error
   model — using the *current* channel state, so a transmission mode chosen
   from a stale CSI estimate pays the corresponding error penalty;
5. the metrics collector records the frame.

A warm-up period can be discarded so that measurements reflect steady state.

Backends
--------
Two interchangeable simulation cores implement the frame loop:

* ``"columnar"`` (the default): traffic state lives in a struct-of-arrays
  :class:`~repro.traffic.population.TerminalPopulation`, advanced by
  vectorised kernels; the frame's grants are transmitted through one batched
  :meth:`~repro.phy.error_model.PacketErrorModel.transmit_batch` call; and
  the MAC layer runs its array-native ``run_frame_batch`` kernels, emitting
  grants as :class:`~repro.mac.requests.GrantColumns` the engine consumes
  without materialising per-terminal views (``use_batch_mac=False`` forces
  the retained view-walking ``run_frame`` path for differential testing).
* ``"object"``: the original per-:class:`~repro.traffic.terminal.Terminal`
  Python loop, retained for differential testing.

In the default ``rng_mode="parity"`` both backends (and both MAC paths)
consume the run's random streams in exactly the same order (batched draws
are stream-compatible with their scalar equivalents), so they produce
**bit-identical** :class:`~repro.sim.results.SimulationResult` values under
a common seed; ``tests/sim/test_backend_parity.py`` asserts it for all six
protocols.  ``rng_mode="fast"`` lets the columnar backend batch whole-frame
draws from per-subsystem child streams instead — statistically equivalent,
not bit-identical (see :class:`~repro.sim.scenario.Scenario`).

Terminal ids must be dense (``terminal_id == population index``): both the
:class:`~repro.channel.manager.ChannelSnapshot` row lookup and the columnar
kernels index arrays by id.  The engine validates this at construction and
raises a clear error for custom populations that violate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.doppler import DopplerModel
from repro.channel.manager import ChannelManager, ChannelSnapshot
from repro.config import SimulationParameters
from repro.mac.base import MACProtocol, snapshot_snr_compatible
from repro.mac.registry import create_protocol
from repro.mac.requests import FrameOutcome
from repro.metrics.collector import MetricsCollector
from repro.obs import trace as _obs_trace
from repro.obs.trace import PHASES, PhaseRecorder
from repro.phy.error_model import PacketErrorModel
from repro.sim.results import SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.scenario import Scenario
from repro.traffic.generator import build_population
from repro.traffic.population import TerminalPopulation
from repro.traffic.terminal import Terminal

__all__ = ["UplinkSimulationEngine"]


class UplinkSimulationEngine:
    """Drives one scenario frame by frame.

    Parameters
    ----------
    scenario:
        The run description (protocol, traffic mix, queueing, seed, speed,
        engine backend).
    params:
        The shared simulation parameters (Table 1).
    protocol:
        Optionally, a pre-built protocol instance (used by tests and
        ablations); by default the registry builds it, including its modem.
    streams:
        Optionally, pre-built random streams.  The constellation layer
        passes per-beam streams derived with beam-specific spawn keys;
        the default derives the classic ``RandomStreams(scenario.seed)``.
    beam:
        Optional beam index when this engine runs one shard of a
        multi-beam constellation; propagated to the channel manager and
        population so id errors report ``(beam, local_id)``.
    """

    def __init__(
        self,
        scenario: Scenario,
        params: Optional[SimulationParameters] = None,
        protocol: Optional[MACProtocol] = None,
        use_batch_mac: Optional[bool] = None,
        streams: Optional[RandomStreams] = None,
        beam: Optional[int] = None,
    ) -> None:
        self.scenario = scenario
        self.params = params if params is not None else SimulationParameters()
        self.streams = streams if streams is not None else RandomStreams(scenario.seed)
        self.beam = None if beam is None else int(beam)
        self.backend = scenario.engine_backend
        self.rng_mode = scenario.rng_mode
        rng_fast = self.rng_mode == "fast" and self.backend == "columnar"

        speed = (
            scenario.mobile_speed_kmh
            if scenario.mobile_speed_kmh is not None
            else self.params.mobile_speed_kmh
        )
        self.doppler = DopplerModel(speed_kmh=speed)
        self.channels = ChannelManager(
            n_users=scenario.n_terminals,
            doppler=self.doppler,
            frame_duration_s=self.params.frame_duration_s,
            rng=self.streams["channel"],
            shadow_std_db=self.params.shadow_std_db,
            shadow_mean_db=self.params.shadow_mean_db,
            shadow_decorrelation_s=self.params.shadow_decorrelation_s,
            mean_snr_db=self.params.mean_snr_db,
            beam=self.beam,
        )

        self.population: Optional[TerminalPopulation] = None
        if self.backend == "columnar":
            self.population = TerminalPopulation(
                self.params,
                scenario.n_voice,
                scenario.n_data,
                self.streams["traffic"],
                rng_mode=self.rng_mode,
                toggle_rng=(
                    self.streams.child("traffic", "toggle") if rng_fast else None
                ),
                burst_rng=(
                    self.streams.child("traffic", "burst") if rng_fast else None
                ),
                beam=self.beam,
            )
            self.terminals: Sequence = self.population.views
        else:
            self.terminals = build_population(
                self.params, scenario.n_voice, scenario.n_data, self.streams["traffic"]
            )
        self._validate_dense_ids(self.terminals)
        self._by_id: Dict[int, Terminal] = {t.terminal_id: t for t in self.terminals}

        if protocol is None:
            protocol = create_protocol(
                scenario.protocol,
                self.params,
                self.streams["mac"],
                use_request_queue=scenario.use_request_queue,
                rng_mode=self.rng_mode if self.backend == "columnar" else "parity",
                contention_rng=(
                    self.streams.child("mac", "contention") if rng_fast else None
                ),
                csi_rng=(
                    self.streams.child("csi", "estimation") if rng_fast else None
                ),
            )
        self.protocol = protocol
        # The array-native MAC kernels drive the columnar backend by
        # default; ``use_batch_mac=False`` forces the view-walking
        # ``run_frame`` path instead (the kernel-equivalence suite compares
        # the two head to head).
        self._use_batch_mac = (
            use_batch_mac
            if use_batch_mac is not None
            else self.backend == "columnar"
        )
        self.error_model = PacketErrorModel(self.protocol.modem, self.streams["error"])
        self._reuse_snapshot_snr = snapshot_snr_compatible(
            self.protocol.modem, self.params
        )
        self.collector = MetricsCollector(
            self.params, self.protocol.frame_structure.info_slots
        )
        self._frame_index = 0
        # Per-phase wall-time accumulators (traffic/channel/MAC/PHY/metrics);
        # populated only after enable_phase_timing() switches the engine to
        # the instrumented step, so the normal hot loop pays nothing.
        self.phase_times: Optional[Dict[str, float]] = None
        #: Per-phase batch-kernel dispatch counts; populated only after
        #: ``enable_phase_timing(count_dispatches=True)``.
        self.dispatch_counts: Optional[Dict[str, int]] = None
        # The phase clock doubles as the span emitter: it is a live
        # ``repro.obs.trace.PhaseRecorder`` whenever phase timing or a
        # process-global tracer is active, and ``None`` otherwise.
        self._clock: Optional[PhaseRecorder] = None
        self._dispatch_counter = None
        self._macro = None
        # Channel snapshots for the columnar backend are produced in blocks
        # (one batched draw + one linear-filter evaluation per block, bit
        # identical to per-frame advancing); the buffer holds the frames the
        # channel has produced ahead of the simulation.
        self._snapshot_buffer: List[ChannelSnapshot] = []
        self._snapshot_cursor = 0

    #: Frames advanced per batched channel evaluation on the columnar backend.
    CHANNEL_BLOCK_FRAMES = 64

    # ------------------------------------------------------------------ API
    @property
    def frame_index(self) -> int:
        """Number of frames simulated so far (including warm-up)."""
        return self._frame_index

    def step(self) -> FrameOutcome:
        """Advance the whole system by one TDMA frame."""
        if self.phase_times is not None or _obs_trace.TRACER is not None:
            self._ensure_instrumented()
            return self._step_timed()
        if self._clock is not None:  # tracer was uninstalled mid-run
            self._clock = None
        if self.population is not None:
            return self._step_columnar()
        return self._step_object()

    def _ensure_instrumented(self) -> None:
        """Keep :attr:`_clock` live and pointed at the current tracer.

        The recorder exists whenever phase timing *or* a process-global
        tracer is active: with only a tracer installed it accumulates into
        a private throwaway dict and its real job is emitting the
        ``phase.*`` spans.
        """
        tracer = _obs_trace.TRACER
        clock = self._clock
        if clock is None:
            times = self.phase_times
            if times is None:
                times = {phase: 0.0 for phase in PHASES}
            self._clock = PhaseRecorder(times, tracer)
        elif clock.tracer is not tracer:
            clock.tracer = tracer

    def enable_phase_timing(
        self, count_dispatches: bool = False
    ) -> Dict[str, float]:
        """Switch to the instrumented step and return the accumulator.

        Subsequent frames add their wall time to the returned dictionary
        under ``traffic`` (source advance + deadline expiry), ``channel``
        (fading evolution), ``mac`` (the protocol's request/allocation
        phases), ``phy`` (grant execution through the error model) and
        ``metrics`` (collection).  The split is what the benchmark harness
        records in ``BENCH_engine.json`` and ``python -m repro profile
        --json`` reports, so the next bottleneck is machine-readable.  The
        same brackets feed the ``phase.*`` spans when a
        :mod:`repro.obs.trace` tracer is installed — one timing substrate.

        With ``count_dispatches=True`` the engine additionally tallies, in
        :attr:`dispatch_counts`, how many batch-kernel dispatches (entries
        into ``@kernel(batch=True)`` functions, counted by
        :class:`repro.obs.dispatch.KernelDispatchCounter`) each phase
        makes — the frame loop's dispatch count, measured rather than
        inferred.  Counting wraps the live kernel bindings and adds a
        little per-entry overhead; call :meth:`disable_phase_timing` when
        done to restore the unwrapped kernels.
        """
        if self.phase_times is None:
            self.phase_times = {phase: 0.0 for phase in PHASES}
            if self._clock is not None:
                self._clock.times = self.phase_times
            self._ensure_instrumented()
        if count_dispatches and self.dispatch_counts is None:
            from repro.obs.dispatch import KernelDispatchCounter

            counts = {phase: 0 for phase in self.phase_times}
            self.dispatch_counts = counts
            clock = self._clock
            self._dispatch_counter = KernelDispatchCounter(
                counts, lambda: clock.phase
            )
            self._dispatch_counter.install()
        return self.phase_times

    def disable_phase_timing(self) -> None:
        """Remove the instrumented step (and unwrap counted kernels)."""
        if self._dispatch_counter is not None:
            self._dispatch_counter.uninstall()
            self._dispatch_counter = None
        self.phase_times = None
        self.dispatch_counts = None
        self._clock = None

    def _step_timed(self) -> FrameOutcome:
        """Instrumented twin of the step bodies (kept in sync with both).

        One implementation covers both backends: each phase call dispatches
        on ``self.population`` exactly like the untimed paths, and the
        clock brackets the same five sections (labelling them for the
        optional dispatch counter).
        """
        clock = self._clock
        frame = self._frame_index
        population = self.population
        columnar = population is not None

        clock.start("channel")
        snapshot = self._next_snapshot() if columnar else self.channels.advance_frame()
        clock.stop()

        clock.start("traffic")
        if columnar:
            voice_losses_before = population.voice_loss_total
            population.advance_frame(frame)
            population.drop_expired(frame)
        else:
            voice_losses_before = self._total_voice_losses()
            for terminal in self.terminals:
                terminal.advance_frame(frame)
                terminal.drop_expired(frame)
        clock.stop()

        clock.start("mac")
        if columnar and self._use_batch_mac:
            outcome = self.protocol.run_frame_batch(frame, population, snapshot)
        else:
            outcome = self.protocol.run_frame(frame, self.terminals, snapshot)
        clock.stop()

        clock.start("phy")
        if columnar and outcome.grants is not None:
            data_delivered = self._execute_grant_columns(outcome.grants, snapshot, frame)
        elif columnar:
            data_delivered = self._execute_allocations_batch(outcome, snapshot, frame)
        else:
            data_delivered = self._execute_allocations(outcome, snapshot, frame)
        clock.stop()

        clock.start("metrics")
        if columnar:
            voice_losses = population.voice_loss_total - voice_losses_before
        else:
            voice_losses = self._total_voice_losses() - voice_losses_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        clock.stop()
        self._frame_index += 1
        return outcome

    def run_frames(self, n_frames: int) -> None:
        """Advance ``n_frames`` frames, macro-stepped when configured.

        With ``Scenario.macro_frames > 1`` on the columnar backend (batch
        MAC path), frames execute in macro blocks through
        :class:`~repro.sim.macro.MacroRunner` — bit-identical to per-frame
        stepping in parity RNG mode.  Otherwise this is a plain
        :meth:`step` loop.
        """
        if n_frames <= 0:
            return
        # The macro runner reads ``self._clock`` directly (it brackets its
        # own block-level sections), so refresh instrumentation up front —
        # including dropping a recorder whose tracer has been uninstalled.
        if self.phase_times is not None or _obs_trace.TRACER is not None:
            self._ensure_instrumented()
        elif self._clock is not None:
            self._clock = None
        runner = self._macro_runner()
        if runner is None:
            for _ in range(n_frames):
                self.step()
            return
        block_size = self.scenario.macro_frames
        remaining = n_frames
        while remaining > 0:
            block = block_size if block_size < remaining else remaining
            runner.run_block(block)
            remaining -= block

    def _macro_runner(self):
        """The lazily built macro runner, or ``None`` when not applicable."""
        if (
            self.scenario.macro_frames <= 1
            or self.population is None
            or not self._use_batch_mac
        ):
            return None
        if self._macro is None:
            from repro.sim.macro import MacroRunner

            self._macro = MacroRunner(self)
        return self._macro

    def run(self) -> SimulationResult:
        """Run warm-up plus the measured period and return the results.

        When a :mod:`repro.obs.trace` tracer is installed the whole run is
        wrapped in an ``engine.run`` root span carrying the scenario's
        identifying attributes, so every ``phase.*`` span in a trace file
        chains up to the run that produced it.
        """
        tracer = _obs_trace.TRACER
        if tracer is None:
            return self._run_measured()
        with tracer.span(
            "engine.run",
            protocol=self.scenario.protocol,
            backend=self.backend,
            n_voice=self.scenario.n_voice,
            n_data=self.scenario.n_data,
            seed=self.scenario.seed,
            macro_frames=self.scenario.macro_frames,
        ):
            return self._run_measured()

    def _run_measured(self) -> SimulationResult:
        warmup = self.scenario.warmup_frames(self.params)
        measured = self.scenario.measured_frames(self.params)
        self.run_frames(warmup)
        self._reset_statistics()
        self.run_frames(measured)
        return self.collect_results()

    def begin_measurement(self) -> None:
        """Start the measured window now (public warm-up boundary hook).

        Equivalent to the reset :meth:`run` performs between warm-up and
        the measured period; exposed so external drivers (the constellation
        runner steps many engines through their warm-up in lockstep) can
        reproduce :meth:`run`'s exact sequencing.
        """
        self._reset_statistics()

    def notify_external_mutation(self) -> None:
        """Block-boundary hook: population state changed outside the engine.

        A constellation handover swaps terminal state between shards at a
        macro-block boundary.  The macro runner keeps incremental mirrors of
        the MAC-visible state; this invalidates them so the next block
        resynchronises from the authoritative arrays.
        """
        if self._macro is not None:
            self._macro.invalidate_mirrors()

    def collect_results(self) -> SimulationResult:
        """Aggregate the metrics collected since the last statistics reset."""
        source = self.population if self.population is not None else self.terminals
        return SimulationResult(
            scenario=self.scenario,
            voice=self.collector.voice_metrics(source),
            data=self.collector.data_metrics(source),
            mac=self.collector.mac_stats(),
        )

    # ------------------------------------------------------- object backend
    def _step_object(self) -> FrameOutcome:
        frame = self._frame_index
        snapshot = self.channels.advance_frame()

        voice_losses_before = self._total_voice_losses()
        for terminal in self.terminals:
            terminal.advance_frame(frame)
            terminal.drop_expired(frame)

        outcome = self.protocol.run_frame(frame, self.terminals, snapshot)
        data_delivered = self._execute_allocations(outcome, snapshot, frame)

        voice_losses = self._total_voice_losses() - voice_losses_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        self._frame_index += 1
        return outcome

    def _execute_allocations(
        self, outcome: FrameOutcome, snapshot: ChannelSnapshot, frame: int
    ) -> int:
        """Transmit the granted packets through the channel; return data deliveries."""
        data_delivered = 0
        for allocation in outcome.allocations:
            terminal = self._by_id.get(allocation.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            amplitude = snapshot.amplitude_of(allocation.terminal_id)
            n_to_send = min(allocation.packet_capacity, terminal.buffer_occupancy)
            delivered = self.error_model.transmit_packets(
                amplitude, n_to_send, throughput=allocation.throughput
            )
            taken = terminal.transmit(
                max_packets=allocation.packet_capacity,
                n_delivered=delivered,
                current_frame=frame,
            )
            if terminal.is_data:
                data_delivered += delivered
            # ``taken`` is only used for defensive consistency checking: the
            # terminal must never consume more packets than the grant allowed.
            assert taken <= allocation.packet_capacity
        return data_delivered

    def _total_voice_losses(self) -> int:
        return sum(
            t.stats.voice_dropped + t.stats.voice_errored
            for t in self.terminals
            if t.is_voice
        )

    # ----------------------------------------------------- columnar backend
    def _next_snapshot(self) -> ChannelSnapshot:
        if self._snapshot_cursor >= len(self._snapshot_buffer):
            self._snapshot_buffer = self.channels.advance_block(
                self.CHANNEL_BLOCK_FRAMES
            )
            self._snapshot_cursor = 0
        snapshot = self._snapshot_buffer[self._snapshot_cursor]
        self._snapshot_cursor += 1
        return snapshot

    def _step_columnar(self) -> FrameOutcome:
        frame = self._frame_index
        population = self.population
        snapshot = self._next_snapshot()

        voice_losses_before = population.voice_loss_total
        population.advance_frame(frame)
        population.drop_expired(frame)

        if self._use_batch_mac:
            outcome = self.protocol.run_frame_batch(frame, population, snapshot)
        else:
            outcome = self.protocol.run_frame(frame, self.terminals, snapshot)
        if outcome.grants is not None:
            data_delivered = self._execute_grant_columns(outcome.grants, snapshot, frame)
        else:
            data_delivered = self._execute_allocations_batch(outcome, snapshot, frame)

        voice_losses = population.voice_loss_total - voice_losses_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        self._frame_index += 1
        return outcome

    def _execute_allocations_batch(
        self, outcome: FrameOutcome, snapshot: ChannelSnapshot, frame: int
    ) -> int:
        """Batched grant execution: one PHY evaluation + one binomial draw.

        Grants are accumulated and transmitted in a single
        :meth:`~repro.phy.error_model.PacketErrorModel.transmit_batch` call.
        If a terminal appears in more than one allocation of the frame (a
        protocol may split a grant), the pending batch is flushed first so
        the later allocation sees the buffer state its predecessors left —
        preserving both the semantics and the RNG draw order of the
        sequential path exactly.
        """
        allocations = outcome.allocations
        if not allocations:
            return 0
        population = self.population
        n = len(population)
        amplitude = snapshot.amplitude
        snr_db = snapshot.snr_db
        occupancy = population.occupancy
        reuse_snr = self._reuse_snapshot_snr

        data_delivered = 0
        batch_ids: List[int] = []
        batch_caps: List[int] = []
        batch_n: List[int] = []
        batch_chan: List[float] = []  # snr_db when reused, amplitude otherwise
        batch_thr: List[float] = []
        any_throughput = False
        batched = set()

        def flush() -> None:
            nonlocal data_delivered, any_throughput
            if not batch_ids:
                return
            channel = np.asarray(batch_chan, dtype=float)
            delivered = self.error_model.transmit_batch(
                None if reuse_snr else channel,
                np.asarray(batch_n, dtype=np.int64),
                np.asarray(batch_thr, dtype=float) if any_throughput else None,
                snr_db=channel if reuse_snr else None,
            )
            data_delivered += population.apply_grants(
                batch_ids, batch_caps, delivered, frame
            )
            batch_ids.clear()
            batch_caps.clear()
            batch_n.clear()
            batch_chan.clear()
            batch_thr.clear()
            any_throughput = False
            batched.clear()

        for allocation in allocations:
            tid = allocation.terminal_id
            if tid in batched:
                flush()
            if tid >= n or occupancy[tid] == 0:
                continue
            batched.add(tid)
            batch_ids.append(tid)
            batch_caps.append(allocation.packet_capacity)
            batch_n.append(min(allocation.packet_capacity, int(occupancy[tid])))
            batch_chan.append(snr_db[tid] if reuse_snr else amplitude[tid])
            throughput = allocation.throughput
            if throughput is None:
                batch_thr.append(np.nan)
            else:
                batch_thr.append(throughput)
                any_throughput = True
        flush()
        return data_delivered

    def _execute_grant_columns(self, grants, snapshot: ChannelSnapshot, frame: int) -> int:
        """Consume a batch kernel's grant columns without touching objects.

        The common case — every granted terminal distinct, as emitted by all
        protocols except DRMA's multi-win frames — is one fancy-indexed
        channel gather, one :meth:`transmit_batch` call and one
        :meth:`apply_grants` pass.  Duplicate-terminal frames fall back to
        the same flush-between-duplicates discipline as the object path, so
        RNG draw order and buffer semantics stay bit-identical either way.
        """
        ids = grants.terminal_ids
        if not ids:
            return 0
        if len(set(ids)) != len(ids):
            return self._execute_grant_columns_segmented(grants, snapshot, frame)
        population = self.population
        ids_arr = np.asarray(ids, dtype=np.int64)
        occupancy = population.occupancy[ids_arr]
        caps = np.asarray(grants.packet_capacities, dtype=np.int64)
        live = occupancy > 0
        if not live.all():
            ids_arr = ids_arr[live]
            if not ids_arr.shape[0]:
                return 0
            occupancy = occupancy[live]
            caps = caps[live]
            throughputs = [
                t for t, keep in zip(grants.throughputs, live) if keep
            ]
        else:
            throughputs = grants.throughputs
        counts = np.minimum(caps, occupancy)
        reuse_snr = self._reuse_snapshot_snr
        channel = (snapshot.snr_db if reuse_snr else snapshot.amplitude)[ids_arr]
        if any(t is not None for t in throughputs):
            throughput_arr = np.asarray(
                [np.nan if t is None else t for t in throughputs], dtype=float
            )
        else:
            throughput_arr = None
        delivered = self.error_model.transmit_batch(
            None if reuse_snr else channel,
            counts,
            throughput_arr,
            snr_db=channel if reuse_snr else None,
        )
        return population.apply_grants(
            ids_arr.tolist(), caps.tolist(), delivered, frame
        )

    def _execute_grant_columns_segmented(
        self, grants, snapshot: ChannelSnapshot, frame: int
    ) -> int:
        """Duplicate-terminal grant columns: flush before each repeat.

        Mirrors :meth:`_execute_allocations_batch`'s flush discipline so a
        terminal's later grant in the same frame sees the buffer state its
        earlier grants left (and the same RNG draw boundaries).
        """
        population = self.population
        occupancy = population.occupancy
        amplitude = snapshot.amplitude
        snr_db = snapshot.snr_db
        reuse_snr = self._reuse_snapshot_snr
        n = len(population)

        data_delivered = 0
        batch_ids: List[int] = []
        batch_caps: List[int] = []
        batch_n: List[int] = []
        batch_chan: List[float] = []
        batch_thr: List[float] = []
        any_throughput = False
        batched = set()

        def flush() -> None:
            nonlocal data_delivered, any_throughput
            if not batch_ids:
                return
            channel = np.asarray(batch_chan, dtype=float)
            delivered = self.error_model.transmit_batch(
                None if reuse_snr else channel,
                np.asarray(batch_n, dtype=np.int64),
                np.asarray(batch_thr, dtype=float) if any_throughput else None,
                snr_db=channel if reuse_snr else None,
            )
            data_delivered += population.apply_grants(
                batch_ids, batch_caps, delivered, frame
            )
            batch_ids.clear()
            batch_caps.clear()
            batch_n.clear()
            batch_chan.clear()
            batch_thr.clear()
            any_throughput = False
            batched.clear()

        for tid, capacity, throughput in zip(
            grants.terminal_ids, grants.packet_capacities, grants.throughputs
        ):
            if tid in batched:
                flush()
            if tid >= n or occupancy[tid] == 0:
                continue
            batched.add(tid)
            batch_ids.append(tid)
            batch_caps.append(capacity)
            batch_n.append(min(capacity, int(occupancy[tid])))
            batch_chan.append(snr_db[tid] if reuse_snr else amplitude[tid])
            if throughput is None:
                batch_thr.append(np.nan)
            else:
                batch_thr.append(throughput)
                any_throughput = True
        flush()
        return data_delivered

    # ------------------------------------------------------------ internals
    def _validate_dense_ids(self, terminals: Sequence) -> None:
        """Require ``terminal_id == index`` (0..n-1) across the population.

        The channel snapshot, the columnar arrays and the MAC fast paths all
        index per-user state by terminal id; a sparse or permuted id layout
        would silently read the wrong user's channel.  This was previously
        an implicit assumption — now it fails fast with a clear error.
        """
        for index, terminal in enumerate(terminals):
            if terminal.terminal_id != index:
                where = (
                    "" if self.beam is None
                    else f" (beam {self.beam}: ids are beam-local within the "
                         f"shard, not global constellation ids)"
                )
                raise ValueError(
                    f"terminal ids must be dense 0..n-1 (id == population "
                    f"index): found id {terminal.terminal_id} at index "
                    f"{index}{where}; channel rows and columnar kernels "
                    f"index per-user state by terminal id"
                )

    def _reset_statistics(self) -> None:
        # Outcomes must be attributed to the same measurement window as the
        # generation events, or conservation (delivered + errored + dropped
        # <= generated) breaks whenever the warm-up leaves a backlog: deep
        # data-terminal buffers carry dozens of packets across the reset,
        # and their later deliveries would be counted against a generated
        # total that never included them.  begin_measurement() therefore
        # excludes packets created before the window from every outcome
        # counter (generated stays the pure in-window traffic, which also
        # keeps common-random-number traffic realisations comparable across
        # protocols).
        if self.population is not None:
            self.population.begin_measurement(self._frame_index)
        else:
            for terminal in self.terminals:
                terminal.begin_measurement(self._frame_index)
        self.collector.reset()
