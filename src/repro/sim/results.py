"""Result containers produced by the simulation runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.collector import MacStats
from repro.metrics.data import DataMetrics
from repro.metrics.voice import VoiceMetrics
from repro.sim.scenario import Scenario

__all__ = ["SimulationResult", "SweepResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Everything measured in one simulation run.

    Attributes
    ----------
    scenario:
        The scenario that was simulated.
    voice:
        Aggregated voice metrics (packet loss decomposition).
    data:
        Aggregated data metrics (throughput, delay).
    mac:
        MAC-layer statistics (contention, slot utilisation, queue length).
    """

    scenario: Scenario
    voice: VoiceMetrics
    data: DataMetrics
    mac: MacStats

    @property
    def voice_loss_rate(self) -> float:
        """Convenience accessor for the headline voice metric."""
        return self.voice.loss_rate

    @property
    def data_throughput(self) -> float:
        """Convenience accessor: delivered data packets per frame."""
        return self.data.throughput_packets_per_frame

    @property
    def data_delay_s(self) -> float:
        """Convenience accessor: mean data access delay in seconds."""
        return self.data.mean_delay_s

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by tables, sweeps and EXPERIMENTS.md."""
        return {
            "protocol": self.scenario.protocol,
            "n_voice": self.scenario.n_voice,
            "n_data": self.scenario.n_data,
            "request_queue": self.scenario.use_request_queue,
            "seed": self.scenario.seed,
            "voice_loss_rate": self.voice.loss_rate,
            "voice_dropping_rate": self.voice.dropping_rate,
            "voice_error_rate": self.voice.error_rate,
            "data_throughput_per_frame": self.data.throughput_packets_per_frame,
            "data_delay_s": self.data.mean_delay_s,
            "slot_utilisation": self.mac.slot_utilisation,
            "collision_rate": self.mac.collision_rate,
            "mean_queue_length": self.mac.mean_queue_length,
        }


@dataclass
class SweepResult:
    """Results of a one-dimensional parameter sweep for one protocol.

    Attributes
    ----------
    protocol:
        Protocol registry name.
    parameter:
        Name of the swept quantity (e.g. ``"n_voice"``).
    values:
        The swept values, in order.
    results:
        One :class:`SimulationResult` per swept value.
    """

    protocol: str
    parameter: str
    values: List[float] = field(default_factory=list)
    results: List[SimulationResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.values) != len(self.results):
            raise ValueError("values and results must have the same length")

    def series(self, metric: str) -> List[float]:
        """Extract one metric across the sweep (by summary key)."""
        return [float(r.summary()[metric]) for r in self.results]

    def crossing_value(self, metric: str, threshold: float) -> Optional[float]:
        """First swept value at which ``metric`` exceeds ``threshold``.

        Used for capacity read-offs such as "number of voice users supported
        at the 1 % packet loss threshold".  Returns ``None`` if the metric
        stays below the threshold over the whole sweep.
        """
        for value, metric_value in zip(self.values, self.series(metric)):
            if metric_value > threshold:
                return value
        return None
