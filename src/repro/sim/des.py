"""A small discrete-event simulation kernel.

The TDMA system itself is frame-synchronous and is driven by the dedicated
engine in :mod:`repro.sim.engine`, but several parts of the model are most
naturally expressed as asynchronous events (burst arrivals, talkspurt
boundaries, experiment orchestration), and the original paper's platform —
like the SimPy-based setups such studies typically use — is an event-driven
simulator.  This module provides that substrate from scratch: a binary-heap
event calendar with deterministic tie-breaking, one-shot and periodic events,
and a simple simulator facade.

The kernel is deliberately free of any wireless-specific logic so that it is
reusable (and testable) on its own.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue", "DiscreteEventSimulator"]


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled occurrence in the event calendar.

    Events order by time, then by insertion sequence (FIFO among
    simultaneous events), which keeps runs deterministic.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)


class EventQueue:
    """Binary-heap event calendar with stable ordering."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    @property
    def is_empty(self) -> bool:
        """Whether no live events remain."""
        return len(self) == 0

    def push(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``; returns the event."""
        if time < 0:
            raise ValueError("event time must be non-negative")
        event = Event(time=float(time), sequence=next(self._counter),
                      callback=callback, label=label)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy deletion)."""
        self._cancelled.add(event.sequence)

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        raise IndexError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].sequence in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.sequence)
        return self._heap[0].time if self._heap else None


class DiscreteEventSimulator:
    """Minimal event-driven simulator: schedule callbacks, run the clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------ API
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule a callback at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (now={self._now}, requested={time})"
            )
        return self._queue.push(time, callback, label)

    def schedule_in(self, delay: float, callback: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule a callback ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self._queue.push(self._now + delay, callback, label)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        label: str = "",
        start_offset: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` periodically.

        The first firing happens ``start_offset`` time units from now, or one
        full ``interval`` from now when no offset is given; subsequent
        firings follow every ``interval``.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if start_offset is None:
            start_offset = interval
        if start_offset < 0:
            raise ValueError("start_offset must be non-negative")

        def fire() -> None:
            callback()
            self.schedule_in(interval, fire, label=label)

        self.schedule_in(start_offset, fire, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event."""
        self._queue.cancel(event)

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when none remain."""
        if self._queue.is_empty:
            return False
        event = self._queue.pop()
        self._now = event.time
        event.callback()
        self._events_processed += 1
        return True

    def run_until(self, end_time: float) -> None:
        """Run events until the clock would pass ``end_time``."""
        if end_time < self._now:
            raise ValueError("end_time must not be in the past")
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
        self._now = end_time

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the calendar is empty (or ``max_events`` were processed)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
