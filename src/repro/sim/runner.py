"""The single-run entry point.

``run_simulation`` evaluates one :class:`~repro.sim.scenario.Scenario` and
returns its :class:`~repro.sim.results.SimulationResult`.  Everything beyond
a single run — sweeps, protocol comparisons, seed replication, parallel or
cached execution — goes through :func:`repro.api.run` with an
:class:`~repro.api.ExperimentSpec` (the deprecated ``run_many`` /
``run_sweep`` / ``run_protocol_comparison`` shims have been removed).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

__all__ = ["run_simulation"]


def run_simulation(
    scenario: Scenario,
    params: Optional[SimulationParameters] = None,
) -> SimulationResult:
    """Simulate one scenario and return its metrics."""
    engine = UplinkSimulationEngine(scenario, params)
    return engine.run()
