"""Legacy entry points, now thin shims over :mod:`repro.api`.

``run_simulation`` remains the single-run primitive.  The sweep helpers —
``run_many``, ``run_sweep`` and ``run_protocol_comparison`` — predate the
unified experiment API and are kept only for backward compatibility: each
builds the equivalent :class:`~repro.api.spec.ExperimentSpec` (or run-point
list), executes it through the shared executors, and converts the
:class:`~repro.api.resultset.ResultSet` back to the legacy return types.
New code should use :func:`repro.api.run` directly, which adds
cross-product sweeps over any scenario/parameter field, per-point seed
replication, executor selection and queryable results.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.scenario import Scenario

__all__ = ["run_simulation", "run_many", "run_sweep", "run_protocol_comparison"]


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.sim.runner.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _coerce_values(parameter: str, values: Iterable) -> list:
    """Historic behaviour: population sweeps coerce their values to int."""
    if parameter in ("n_voice", "n_data"):
        return [int(v) for v in values]
    return list(values)


def _sweep_points(protocol: str, parameter: str, values: Sequence,
                  base_scenario: Scenario) -> list:
    """Expand one legacy sweep into ordered run points.

    Field validation is delegated to :class:`~repro.api.spec.SweepAxis`
    (whose error message lists every sweepable field), but the expansion is
    done here because the legacy API tolerated duplicate sweep values,
    which a declarative grid rejects.
    """
    from repro.api.spec import RunPoint, SweepAxis

    axis = SweepAxis(parameter, list(dict.fromkeys(values)))
    points = []
    for value in values:
        if axis.target == "scenario":
            scenario = base_scenario.with_overrides(
                **{parameter: value, "protocol": protocol}
            )
            param_overrides = ()
        else:
            scenario = base_scenario.with_overrides(protocol=protocol)
            param_overrides = ((parameter, value),)
        points.append(RunPoint(
            index=len(points),
            scenario=scenario,
            param_overrides=param_overrides,
            coords=tuple(sorted({
                "protocol": protocol, parameter: value, "seed": scenario.seed,
            }.items())),
        ))
    return points


def run_simulation(
    scenario: Scenario,
    params: Optional[SimulationParameters] = None,
) -> SimulationResult:
    """Simulate one scenario and return its metrics."""
    engine = UplinkSimulationEngine(scenario, params)
    return engine.run()


def run_many(
    scenarios: Sequence[Scenario],
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> List[SimulationResult]:
    """Run several independent scenarios, optionally in parallel processes.

    Deprecated shim: delegates to the executors of :mod:`repro.api`, whose
    parallel backend ships the shared ``params`` to each worker exactly once
    (via the pool initializer) instead of pickling it with every job.

    Parameters
    ----------
    scenarios:
        The runs to execute.
    params:
        Shared simulation parameters.
    n_workers:
        Number of worker processes; 1 (the default) runs sequentially in the
        current process, which is preferable for small batches because each
        worker re-imports the package.
    """
    from repro.api import run_points
    from repro.api.spec import RunPoint

    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    _deprecated("run_many", "repro.api.run with an ExperimentSpec")
    points = [
        RunPoint(index=i, scenario=scenario) for i, scenario in enumerate(scenarios)
    ]
    return run_points(points, params, n_workers=n_workers)


def run_sweep(
    protocol: str,
    values: Iterable[int],
    parameter: str = "n_voice",
    base_scenario: Optional[Scenario] = None,
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> SweepResult:
    """Sweep one scenario/parameter field for one protocol.

    Deprecated shim over :func:`repro.api.run`.  Any sweepable field is now
    accepted (validation is delegated to
    :class:`~repro.api.spec.SweepAxis`, whose error message lists the
    sweepable fields), not just ``"n_voice"`` / ``"n_data"``.

    Parameters
    ----------
    protocol:
        Protocol registry name.
    values:
        The swept values (e.g. numbers of voice users).
    parameter:
        Scenario or simulation-parameter field to sweep.
    base_scenario:
        Template scenario providing everything except the swept field; a
        sensible default is used when omitted.
    params:
        Shared simulation parameters.
    n_workers:
        Worker processes for the independent runs.
    """
    from repro.api import run_points

    _deprecated("run_sweep", "repro.api.run with an ExperimentSpec")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if base_scenario is None:
        base_scenario = Scenario(protocol=protocol, n_voice=0, n_data=0)
    values = _coerce_values(parameter, values)
    points = _sweep_points(protocol, parameter, values, base_scenario)
    results = run_points(points, params, n_workers=n_workers)
    return SweepResult(
        protocol=protocol, parameter=parameter, values=list(values),
        results=results,
    )


def run_protocol_comparison(
    protocols: Sequence[str],
    values: Iterable[int],
    parameter: str = "n_voice",
    base_scenario: Optional[Scenario] = None,
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> Dict[str, SweepResult]:
    """Run the same sweep for several protocols (one paper sub-figure).

    Deprecated shim over :func:`repro.api.run`.
    """
    from repro.api import run_points

    _deprecated("run_protocol_comparison", "repro.api.run with an ExperimentSpec")
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    if base_scenario is None:
        base_scenario = Scenario(protocol=protocols[0], n_voice=0, n_data=0)
    values = _coerce_values(parameter, values)
    comparison: Dict[str, SweepResult] = {}
    for protocol in protocols:
        points = _sweep_points(protocol, parameter, values, base_scenario)
        results = run_points(points, params, n_workers=n_workers)
        comparison[protocol] = SweepResult(
            protocol=protocol, parameter=parameter, values=list(values),
            results=results,
        )
    return comparison
