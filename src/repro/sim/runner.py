"""High-level entry points: run one scenario, or sweep many.

``run_simulation`` is the single-call API used by the examples and the
benchmark harness.  ``run_sweep`` evaluates one protocol across a range of
population sizes (the x-axis of the paper's Figs. 11-13) and
``run_protocol_comparison`` produces the multi-protocol family of curves of
one sub-figure.  Sweeps can optionally fan out across processes — each run is
completely independent, which makes this an embarrassingly parallel workload.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult, SweepResult
from repro.sim.scenario import Scenario

__all__ = ["run_simulation", "run_many", "run_sweep", "run_protocol_comparison"]


def run_simulation(
    scenario: Scenario,
    params: Optional[SimulationParameters] = None,
) -> SimulationResult:
    """Simulate one scenario and return its metrics."""
    engine = UplinkSimulationEngine(scenario, params)
    return engine.run()


def _run_one(args) -> SimulationResult:
    scenario, params = args
    return run_simulation(scenario, params)


def run_many(
    scenarios: Sequence[Scenario],
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> List[SimulationResult]:
    """Run several independent scenarios, optionally in parallel processes.

    Parameters
    ----------
    scenarios:
        The runs to execute.
    params:
        Shared simulation parameters.
    n_workers:
        Number of worker processes; 1 (the default) runs sequentially in the
        current process, which is preferable for small batches because each
        worker re-imports the package.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be at least 1")
    jobs = [(scenario, params) for scenario in scenarios]
    if n_workers == 1 or len(jobs) <= 1:
        return [_run_one(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_run_one, jobs))


def run_sweep(
    protocol: str,
    values: Iterable[int],
    parameter: str = "n_voice",
    base_scenario: Optional[Scenario] = None,
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> SweepResult:
    """Sweep a population-size parameter for one protocol.

    Parameters
    ----------
    protocol:
        Protocol registry name.
    values:
        The swept values (e.g. numbers of voice users).
    parameter:
        Scenario field to sweep: ``"n_voice"`` or ``"n_data"``.
    base_scenario:
        Template scenario providing everything except the swept field; a
        sensible default is used when omitted.
    params:
        Shared simulation parameters.
    n_workers:
        Worker processes for the independent runs.
    """
    if parameter not in ("n_voice", "n_data"):
        raise ValueError("parameter must be 'n_voice' or 'n_data'")
    if base_scenario is None:
        base_scenario = Scenario(protocol=protocol, n_voice=0, n_data=0)
    values = [int(v) for v in values]
    scenarios = [
        base_scenario.with_overrides(**{parameter: value, "protocol": protocol})
        for value in values
    ]
    results = run_many(scenarios, params, n_workers=n_workers)
    return SweepResult(
        protocol=protocol, parameter=parameter, values=list(values), results=results
    )


def run_protocol_comparison(
    protocols: Sequence[str],
    values: Iterable[int],
    parameter: str = "n_voice",
    base_scenario: Optional[Scenario] = None,
    params: Optional[SimulationParameters] = None,
    n_workers: int = 1,
) -> Dict[str, SweepResult]:
    """Run the same sweep for several protocols (one paper sub-figure)."""
    values = [int(v) for v in values]
    return {
        protocol: run_sweep(
            protocol,
            values,
            parameter=parameter,
            base_scenario=base_scenario,
            params=params,
            n_workers=n_workers,
        )
        for protocol in protocols
    }
