"""The single-run entry point.

``run_simulation`` evaluates one :class:`~repro.sim.scenario.Scenario` and
returns its :class:`~repro.sim.results.SimulationResult`.  Everything beyond
a single run — sweeps, protocol comparisons, seed replication, parallel or
cached execution — goes through :func:`repro.api.run` with an
:class:`~repro.api.ExperimentSpec` (the deprecated ``run_many`` /
``run_sweep`` / ``run_protocol_comparison`` shims have been removed).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario

__all__ = ["run_simulation"]


def run_simulation(
    scenario: Scenario,
    params: Optional[SimulationParameters] = None,
) -> SimulationResult:
    """Simulate one scenario and return its metrics.

    Also accepts a :class:`~repro.constellation.scenario.
    ConstellationScenario`, in which case the constellation runner steps
    every beam and the *merged* constellation-aggregate result is returned
    (the per-beam breakdown is available from
    :func:`repro.constellation.run_constellation` directly).
    """
    if not isinstance(scenario, Scenario):
        # Imported lazily: repro.constellation builds on this module.
        from repro.constellation.runner import run_constellation
        from repro.constellation.scenario import ConstellationScenario

        if isinstance(scenario, ConstellationScenario):
            return run_constellation(scenario, params).merged
    engine = UplinkSimulationEngine(scenario, params)
    return engine.run()
