"""Macro-stepped execution of the columnar frame loop.

The per-frame columnar engine pays a fixed dispatch floor of ~25 small
NumPy kernel calls per 2.5 ms frame — traffic advance, channel snapshot,
candidate masks, contention draws, grant gathers, a PHY batch and metrics
bookkeeping.  :class:`MacroRunner` advances the simulation in blocks of
``Scenario.macro_frames`` frames instead, with O(1) dispatches per block
for the predictable work:

* **traffic** — :meth:`~repro.traffic.population.TerminalPopulation.plan_frames`
  pre-draws the whole block's source events in per-frame order and each
  frame replays its recorded events with a handful of scalar writes;
* **contention** — permission draws are served from a :class:`RandomPool`
  prefetched from the contention stream.  NumPy generators consume their
  bit stream element by element, so a pool of ``N`` uniforms is exactly the
  next ``N`` per-minislot draws regardless of how the per-frame path would
  have partitioned the calls; when a frame's true consumption falls short
  of the prefetch (a winner shrinks later minislots, a state change ends
  the block), the pool **rolls the generator back and replays** exactly the
  consumed prefix, leaving the stream bit-identical to per-frame stepping;
* **reservation PHY** — voice-reservation transmissions pop their packets
  deterministically at their own frame (a transmitted voice packet leaves
  the buffer whether or not it is received), while the Bernoulli outcomes
  of many frames resolve in one batched binomial draw — again bit-exact,
  because batched binomials consume the error stream element-wise;
* **metrics** — per-frame statistics accumulate in plain lists and cross
  the collector boundary once per block.

A frame the fast path cannot express exactly — non-empty request queue, a
protocol without lookahead support (CHARISMA draws CSI estimates every
frame), DRMA/RAMA frames with live contenders — falls back to the
protocol's own ``run_frame_batch`` after flushing all deferred state, so
the surrounding frames still enjoy the fused traffic/channel/metrics path.
In ``rng_mode="parity"`` the whole construction is **bit-identical** to
``macro_frames=1``; ``tests/sim/test_backend_parity.py`` sweeps
``macro_frames`` in {1, 4, 16, 64} over all six protocols to prove it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import List, Optional

import numpy as np

from repro.accel import contention_round_scan
from repro.lint.contracts import kernel
from repro.mac.contention import run_contention_ids
from repro.obs import metrics as _metrics

__all__ = ["MacroRunner", "NormalPool", "RandomPool"]


class RandomPool:
    """Prefetched uniform draws with exact roll-back/replay.

    ``take(n)`` hands out the next ``n`` doubles of the generator's stream
    from a prefetched buffer; ``unwind(n)`` returns the most recent ``n``
    (a pure pointer move — nothing re-enters the generator); ``close()``
    restores the generator to the pre-prefetch state and re-consumes
    exactly the handed-out prefix, so after closing, the generator state is
    indistinguishable from having made the per-frame draws directly.
    """

    __slots__ = ("_rng", "_chunk", "_state", "_buffer", "_position", "_draw")

    def __init__(self, rng: np.random.Generator, chunk: int = 4096) -> None:
        self._rng = rng
        self._chunk = int(chunk)
        self._state = None
        self._buffer: Optional[np.ndarray] = None
        self._position = 0
        # The prefetch/replay primitive; subclasses pool other elementwise
        # distributions by swapping it (``standard_normal`` consumes the
        # bit stream element by element exactly like ``random`` does, so
        # the restore-and-redraw replay stays exact for either).
        self._draw = rng.random

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` stream doubles (a view into the prefetch buffer)."""
        buffer = self._buffer
        if buffer is None or self._position + n > buffer.shape[0]:
            self._refill(n)
            buffer = self._buffer
        start = self._position
        self._position = start + n
        return buffer[start : self._position]

    def unwind(self, n: int) -> None:
        """Give back the most recently taken ``n`` doubles (pointer move)."""
        self._position -= n

    def close(self) -> int:
        """Roll back and replay: leave the generator exactly where
        per-frame draws of the consumed prefix would have left it.

        Returns the number of prefetched-but-unconsumed doubles rolled
        back (0 when nothing was open), and counts each truncating close
        on the ``pool.replay_truncations`` metric.
        """
        buffer = self._buffer
        if buffer is None:
            return 0
        unused = buffer.shape[0] - self._position
        self._rng.bit_generator.state = self._state
        if self._position:
            self._draw(self._position)
        self._state = None
        self._buffer = None
        self._position = 0
        if unused:
            m = _metrics.METRICS
            if m.enabled:
                m.inc("pool.replay_truncations")
        return unused

    def _refill(self, n: int) -> None:
        self.close()
        self._state = self._rng.bit_generator.state
        self._buffer = self._draw(max(n, self._chunk))
        self._position = 0


class NormalPool(RandomPool):
    """:class:`RandomPool` over standard normals (CSI estimation noise).

    Same prefetch / ``unwind`` / restore-and-replay contract, drawn with
    ``Generator.standard_normal`` instead of ``Generator.random``.  Because
    ``Generator.normal(loc, scale, size=n)`` consumes the bit stream
    exactly like ``standard_normal(n)`` (one ziggurat draw per element),
    closing the pool leaves the generator indistinguishable from having
    made the per-frame ``normal(scale=σ, size=·)`` estimation calls
    directly — the property CHARISMA's fast-mode CSI batching rests on.
    """

    __slots__ = ()

    def __init__(self, rng: np.random.Generator, chunk: int = 4096) -> None:
        super().__init__(rng, chunk)
        self._draw = rng.standard_normal


class MacroRunner:
    """Executes the engine's frame loop in macro blocks (see module doc)."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.population = engine.population
        self.protocol = engine.protocol
        self.collector = engine.collector
        self.error_model = engine.error_model
        protocol = self.protocol
        self._supported = bool(
            getattr(protocol, "supports_macro_lookahead", False)
        )
        self._minislots = protocol.macro_minislots() if self._supported else None
        self._data_cap = protocol.macro_data_slot_cap() if self._supported else None
        self._style = (
            getattr(protocol, "macro_contention_style", None)
            if self._supported
            else None
        )
        self._info_slots = protocol.frame_structure.info_slots
        self._convert_minislots = protocol.frame_structure.minislots_per_info_slot
        self._auction_slots = protocol.frame_structure.request_minislots
        self._reuse_snr = engine._reuse_snapshot_snr
        self._adaptive = protocol.modem.is_adaptive
        self._pool = RandomPool(protocol.contention_rng)
        self._voice_p = protocol.permission.voice_probability
        self._data_p = protocol.permission.data_probability
        self._nv = self.population.n_voice

        # CSI-scheduled (CHARISMA, fast mode only) frame machinery: the
        # estimation-noise pool over the protocol's dedicated CSI child
        # stream plus the constants the fused inline frame folds its
        # per-frame mode lookup, priority metric and allocation walk over.
        self._csi_pool: Optional[NormalPool] = None
        self._csi_std = 0.0
        if self._style == "csi_schedule":
            estimator = protocol.csi_estimator
            self._csi_std = estimator.estimation_std(0.0)
            if self._csi_std:
                self._csi_pool = NormalPool(estimator.noise_rng)
            table = protocol.modem.mode_table
            self._thr_by_idx = table.throughput_by_mode_index
            self._packs_by_idx = table.packets_by_mode_index
            self._csi_thresholds = table.thresholds_db
            self._csi_mean_snr = protocol.modem.mean_snr_db
            weights = protocol.priority_calculator.weights
            self._csi_vdl = int(protocol.params.voice_deadline_frames)
            # pow(beta, h) over the reachable integer horizons, premultiplied
            # by the urgency weight — element-for-element the floats
            # ``priorities_columns`` computes, just looked up instead of
            # re-exponentiated every frame.
            self._csi_urg_lut = weights.urgency_weight_voice * np.power(
                weights.beta_voice,
                np.arange(self._csi_vdl + 1, dtype=float),
            )
            self._csi_alpha = (weights.alpha_voice, weights.alpha_data)
            self._csi_voffset = weights.voice_offset
            self._csi_slots = protocol.allocator.n_info_slots
            self._csi_margin = protocol.allocator.defer_deadline_margin
            self._csi_lowest_thr = table[0].throughput

        # Mirrors of the MAC state the fast path reads every frame, updated
        # incrementally from traffic/drop/grant events and resynchronised
        # from the authoritative structures after any fallback frame.
        self._mirrors_dirty = True
        # Frame index this runner expects to resume at; frames advanced
        # outside run_block (engine.step() interleaving) invalidate the
        # mirrors, which only track events the runner itself executed.
        self._expected_frame: Optional[int] = None
        self._holders: List[int] = []
        self._holders_set = set()
        self._cand_ids: List[int] = []
        self._cand_probs: List[float] = []
        self._cand_probs_arr: Optional[np.ndarray] = None

        # Deferred voice PHY rows (parallel lists) and buffered per-frame
        # statistic records ([attempts, collisions, idle, allocated,
        # queued, data_delivered, voice_losses]).
        self._phy_rec: List[int] = []
        self._phy_tids: List[int] = []
        self._phy_counts: List[int] = []
        self._phy_aux: List[int] = []  # voice: pre-window; data: capacity
        self._phy_voice: List[bool] = []
        self._phy_frames: List[int] = []
        self._phy_chans: List[float] = []
        self._phy_thrs: List[float] = []
        self._records: List[List] = []

    # ------------------------------------------------------------------ API
    def invalidate_mirrors(self) -> None:
        """Mark the incremental MAC-state mirrors stale.

        External drivers that mutate population state between blocks (a
        constellation handover swaps terminal state across shards at the
        block boundary) call this so the next :meth:`run_block`
        resynchronises from the authoritative structures instead of
        trusting the event-driven mirrors.
        """
        self._mirrors_dirty = True

    def run_block(self, n_frames: int) -> None:
        """Advance ``n_frames`` frames as one macro block."""
        engine = self.engine
        population = self.population
        clock = engine._clock
        start = engine._frame_index
        if start != self._expected_frame:
            # Frames ran outside this runner (interleaved engine.step());
            # the incremental mirrors no longer describe current state.
            self._mirrors_dirty = True

        tracer = clock.tracer if clock is not None else None
        if clock:
            clock.start("traffic")
        plan = population.plan_frames(start, n_frames)
        if clock:
            clock.stop()
        if tracer is not None:
            tracer.event("macro.plan", frames=n_frames, start_frame=start)

        for offset in range(n_frames):
            frame = start + offset
            if clock:
                clock.start("channel")
            snapshot = engine._next_snapshot()
            if clock:
                clock.stop()
                clock.start("traffic")
            population.apply_planned_frame(plan, frame)
            drops = population.drop_expired_events(frame)
            if clock:
                clock.stop()
            if not self._fast_frame(plan, offset, frame, snapshot, drops, clock):
                self._fallback_frame(frame, snapshot, drops, clock)
            engine._frame_index = frame + 1

        self._flush_phy(clock)
        self._commit_records(clock)
        unused = self._pool.close()
        if self._csi_pool is not None:
            unused += self._csi_pool.close()
        if tracer is not None and unused:
            tracer.event("macro.rollback", unused_draws=unused)
        self._expected_frame = engine._frame_index

    # ----------------------------------------------------------- fast frame
    def _fast_frame(self, plan, offset, frame, snapshot, drops, clock) -> bool:
        """Execute one frame inline; ``False`` defers to the per-frame kernel."""
        if not self._supported:
            return False
        protocol = self.protocol
        queue = protocol.request_queue
        if queue is not None and len(queue):
            return False
        if self._mirrors_dirty:
            self._sync_mirrors()
        else:
            self._update_mirrors(plan, offset, drops)
        if self._style == "csi_schedule":
            # CHARISMA frames always draw CSI and rank their pending pool —
            # quiet or contended — so they bypass the generic holder-serve
            # body entirely.
            return self._csi_frame(frame, snapshot, drops, clock)
        candidates = self._cand_ids
        minislots = self._minislots
        if candidates and minislots is None:
            # No fixed request subframe: dispatch on the protocol's inline
            # contention style.  DRMA's interleaved serve/convert loop is
            # structurally its own frame body; RAMA's auction slots into
            # the generic frame as a request-phase variant; anything else
            # requires the full per-frame kernel.
            if self._style == "slot_loop":
                return self._slot_loop_frame(frame, snapshot, drops, clock)
            if self._style != "auction":
                return False

        if clock:
            clock.start("mac")
        population = self.population
        occupancy_array = population.occupancy
        # Small populations: one bulk tolist beats the dozens of scalar
        # reads the holder/winner loops make; large ones read just the few
        # entries they need straight from the array.
        occ_list = (
            occupancy_array.tolist()
            if occupancy_array.shape[0] <= 256
            else occupancy_array
        )
        in_talkspurt = population.in_talkspurt

        # Reservation release + FCFS reserved service, ascending holder id.
        served: List[int] = []
        slots_left = self._info_slots
        to_release = None
        for tid in self._holders:
            if occ_list[tid] > 0:
                if slots_left > 0:
                    served.append(tid)
                    slots_left -= 1
            elif not in_talkspurt[tid]:
                if to_release is None:
                    to_release = []
                to_release.append(tid)
        if to_release is not None:
            reservations = protocol.reservations
            for tid in to_release:
                reservations.release(tid)
                self._holders.remove(tid)
                self._holders_set.discard(tid)

        # Request phase.
        if candidates:
            if minislots is not None:
                winners, attempts, collisions, idle = self._run_contention(
                    minislots
                )
            else:
                winners, attempts, collisions, idle = self._run_auction()
        else:
            winners = ()
            attempts = collisions = 0
            idle = protocol.macro_quiet_idle_slots(len(served))

        # Allocation phase: per-grant capacities in one channel lookup.
        voice_winners: List[int] = []
        data_winners: List[int] = []
        if winners:
            nv = self._nv
            for tid in winners:
                (voice_winners if tid < nv else data_winners).append(tid)
        grant_order = served + voice_winners + data_winners
        if self._adaptive and grant_order:
            per_slot_arr, thr_arr = protocol.grant_capacity_columns(
                np.asarray(grant_order, dtype=np.int64), snapshot
            )
            per_slot_list = per_slot_arr.tolist()
            thr_list = thr_arr.tolist()
        else:
            per_slot_list = thr_list = None

        voice_rows: List = []  # (tid, capacity, throughput)
        data_rows: List = []
        allocated = len(served)
        for position, tid in enumerate(served):
            if per_slot_list is None:
                voice_rows.append((tid, 1, None))
            else:
                voice_rows.append((tid, per_slot_list[position], thr_list[position]))

        unserved: List[int] = []
        cap_cursor = len(served)
        for tid in voice_winners:
            if slots_left < 1:
                unserved.append(tid)
                cap_cursor += 1
                continue
            if per_slot_list is None:
                voice_rows.append((tid, 1, None))
            else:
                voice_rows.append(
                    (tid, per_slot_list[cap_cursor], thr_list[cap_cursor])
                )
            cap_cursor += 1
            slots_left -= 1
            allocated += 1
            protocol.reservations.grant(tid, frame)
            insort(self._holders, tid)
            self._holders_set.add(tid)
            self._discard_candidate(tid)
        data_cap = self._data_cap
        for tid in data_winners:
            if slots_left < 1:
                unserved.append(tid)
                cap_cursor += 1
                continue
            if per_slot_list is None:
                per_slot, throughput = 1, None
            else:
                per_slot = per_slot_list[cap_cursor]
                throughput = thr_list[cap_cursor]
            cap_cursor += 1
            needed = -(-int(occ_list[tid]) // max(1, per_slot))
            n_slots = needed if needed < slots_left else slots_left
            if n_slots < 1:
                n_slots = 1
            if data_cap is not None and n_slots > data_cap:
                n_slots = data_cap
            slots_left -= n_slots
            allocated += n_slots
            data_rows.append((tid, per_slot * n_slots, throughput))

        # Winners the frame could not serve are queued (with-queue variant)
        # or discarded; queueing changes the candidate rule, so the mirrors
        # resynchronise once the queue drains.
        if unserved and queue is not None:
            queue.extend(
                protocol.make_request_for_id(population, tid, frame)
                for tid in unserved
            )
            self._mirrors_dirty = True
        queued = len(queue) if queue is not None else 0

        # Execute the frame's grants: deterministic buffer pops now, one
        # deferred Bernoulli resolution per flush.  Row order matches the
        # per-frame grant columns (reserved, voice winners, data winners).
        record_index = len(self._records)
        record = [attempts, collisions, idle, allocated, queued, 0, 0]
        if drops:
            counted = 0
            for _tid, _dropped, in_window in drops:
                counted += in_window
            record[6] = counted
        self._records.append(record)

        if voice_rows or data_rows:
            chan_src = snapshot.snr_db if self._reuse_snr else snapshot.amplitude
            phy_rec = self._phy_rec
            phy_tids = self._phy_tids
            phy_counts = self._phy_counts
            phy_aux = self._phy_aux
            phy_voice = self._phy_voice
            phy_frames = self._phy_frames
            phy_chans = self._phy_chans
            phy_thrs = self._phy_thrs
            pop_voice = population.transmit_voice_pop
            for tid, capacity, throughput in voice_rows:
                n_transmitted, pre_window = pop_voice(tid, capacity)
                phy_rec.append(record_index)
                phy_tids.append(tid)
                phy_counts.append(n_transmitted)
                phy_aux.append(pre_window)
                phy_voice.append(True)
                phy_frames.append(frame)
                phy_chans.append(float(chan_src[tid]))
                phy_thrs.append(np.nan if throughput is None else throughput)
            for tid, capacity, throughput in data_rows:
                occupancy = int(occ_list[tid])
                phy_rec.append(record_index)
                phy_tids.append(tid)
                phy_counts.append(
                    capacity if capacity < occupancy else occupancy
                )
                phy_aux.append(capacity)
                phy_voice.append(False)
                phy_frames.append(frame)
                phy_chans.append(float(chan_src[tid]))
                phy_thrs.append(np.nan if throughput is None else throughput)
        if clock:
            clock.stop()

        if data_rows:
            # Data outcomes feed back into buffer state (only delivered
            # packets leave a data buffer), so the next frame's decisions
            # need them resolved — the flush boundary of the lookahead.
            self._flush_phy(clock)
        return True

    @kernel
    def _run_contention(self, n_minislots: int, ids=None, probs=None):
        """Pool-fed slotted contention, bit-identical to the live draws.

        Each round covers the remaining minislots against the current
        contender pool in one prefetched matrix; the first exactly-one-
        transmitter row ends the round (later rows would have been drawn
        against a smaller pool, so their prefetched draws are returned to
        the pool untouched) and the next round restarts after the winner.

        Without explicit ``ids``/``probs`` the mirror's candidate lists are
        used; callers running contention over a frame-local pool (DRMA's
        converted slots) pass their own aligned id list and probability
        array.  Either way the caller's list is never mutated — winners pop
        from a lazily created copy.
        """
        if ids is None:
            ids = self._cand_ids
            probs = self._cand_probs_arr
            if probs is None:
                probs = self._cand_probs_arr = np.asarray(
                    self._cand_probs, dtype=float
                )
        m = _metrics.METRICS
        if m.enabled:
            # Pure accumulation — no clock, no draw — so metrics stay
            # legal inside kernel bodies (KRN002 only bans *timing*).
            m.inc("contention.rounds", n_minislots)
        pool = self._pool
        k = len(ids)
        winners: List[int] = []
        attempts = collisions = idle = 0
        done = 0
        active_ids = ids
        while done < n_minislots:
            if k == 0:
                idle += n_minislots - done
                break
            rows = n_minislots - done
            draws = pool.take(rows * k).reshape(rows, k)
            counts, winner_row, winner_col = contention_round_scan(draws, probs)
            if winner_row < 0:
                attempts += int(counts.sum())
                zeros = int(np.count_nonzero(counts == 0))
                idle += zeros
                collisions += rows - zeros
                break
            pool.unwind((rows - winner_row - 1) * k)
            if winner_row:
                head = counts[:winner_row]
                attempts += int(head.sum())
                zeros = int(np.count_nonzero(head == 0))
                idle += zeros
                collisions += winner_row - zeros
            attempts += 1
            if active_ids is ids:
                active_ids = list(active_ids)
            winners.append(active_ids.pop(winner_col))
            probs = np.delete(probs, winner_col)
            k -= 1
            done += winner_row + 1
        return winners, attempts, collisions, idle

    def _run_auction(self):
        """RAMA's auction phase inline, draw-for-draw the per-frame kernel.

        At most one tie check plus one winner pick per auction slot, drawn
        directly from the protocol's shared MAC stream in the exact
        per-frame call order — the auction is inherently sequential (each
        slot's pool depends on the previous winners) so there is nothing to
        pool, and the runner's :class:`RandomPool` is never open during an
        auction frame (RAMA frames take no pooled draws), so the direct
        draws cannot interleave with a prefetch.
        """
        protocol = self.protocol
        rng = protocol.rng
        tie_probability = protocol.whole_id_tie_probability
        nv = self._nv
        remaining = list(self._cand_ids)
        voice_flags = [tid < nv for tid in remaining]
        winners: List[int] = []
        attempts = collisions = idle = 0
        for _ in range(self._auction_slots):
            n_remaining = len(remaining)
            if n_remaining == 0:
                idle += 1
                continue
            attempts += n_remaining
            pool = [
                tid for tid, voice in zip(remaining, voice_flags) if voice
            ] or remaining
            if rng.random() < tie_probability(len(pool)):
                collisions += 1
                continue
            winner = pool[int(rng.integers(len(pool)))]
            position = remaining.index(winner)
            remaining.pop(position)
            voice_flags.pop(position)
            winners.append(winner)
        return winners, attempts, collisions, idle

    def _slot_loop_frame(self, frame, snapshot, drops, clock) -> bool:
        """DRMA contended frame inline: cursor service + converted slots.

        Replicates ``DRMAProtocol.run_frame_batch`` decision for decision:
        reservation holders head a pending pool advanced by a cursor, every
        unassigned information slot converts into ``N_x`` request minislots
        (pool-fed, bit-identical prefixes), and winners re-enter the same
        frame's pending pool.  A data winner with a deep buffer can win —
        and be served — several converted slots of one frame; those
        duplicate grants adopt the engine's flush-between-duplicates
        discipline, so each later grant sees the buffer state (and the RNG
        draw boundaries) its earlier grants left, exactly like
        ``Engine._execute_grant_columns_segmented``.
        """
        if clock:
            clock.start("mac")
        protocol = self.protocol
        population = self.population
        queue = protocol.request_queue
        reservations = protocol.reservations
        occupancy_array = population.occupancy
        occ_list = (
            occupancy_array.tolist()
            if occupancy_array.shape[0] <= 256
            else occupancy_array
        )
        in_talkspurt = population.in_talkspurt
        nv = self._nv

        # Reservation release + pending pool (holders with packets, in
        # ascending id order — the reserved_ids order the kernel uses).
        pending: List[int] = []
        pending_res: List[bool] = []
        to_release = None
        for tid in self._holders:
            if occ_list[tid] > 0:
                pending.append(tid)
                pending_res.append(True)
            elif not in_talkspurt[tid]:
                if to_release is None:
                    to_release = []
                to_release.append(tid)
        if to_release is not None:
            for tid in to_release:
                reservations.release(tid)
                self._holders.remove(tid)
                self._holders_set.discard(tid)

        # Frame-local candidate pool.  The mirror's lists are never mutated
        # in place: the drop rule below rebuilds fresh lists, and the
        # per-minislot resolution pops winners from a lazily created copy.
        local_ids = self._cand_ids
        local_probs = self._cand_probs
        pool_take = self._pool.take

        minislots = self._convert_minislots
        chan_src = snapshot.snr_db if self._reuse_snr else snapshot.amplitude
        phy_rec = self._phy_rec
        phy_tids = self._phy_tids
        phy_counts = self._phy_counts
        phy_aux = self._phy_aux
        phy_voice = self._phy_voice
        phy_frames = self._phy_frames
        phy_chans = self._phy_chans
        phy_thrs = self._phy_thrs
        pop_voice = population.transmit_voice_pop

        # The frame's record is appended up front (zero-filled) because the
        # duplicate-grant discipline may flush mid-frame, and flushing
        # resolves deferred rows into their records.
        record = [0, 0, 0, 0, 0, 0, 0]
        if drops:
            counted = 0
            for _tid, _dropped, in_window in drops:
                counted += in_window
            record[6] = counted
        record_index = len(self._records)
        self._records.append(record)

        attempts = collisions = idle = allocated = 0
        cursor = 0
        frame_data_tids = None
        any_data = False
        for _ in range(self._info_slots):
            # Serve the next pending entry whose terminal still has packets
            # (buffer states are frozen during the frame, exactly like the
            # kernel's occupancy_list snapshot).
            served_id = -1
            is_reservation = False
            while cursor < len(pending):
                tid = pending[cursor]
                is_reservation = pending_res[cursor]
                cursor += 1
                if occ_list[tid] > 0:
                    served_id = tid
                    break
            if served_id >= 0:
                allocated += 1
                if served_id < nv:
                    if not is_reservation:
                        reservations.grant(served_id, frame)
                        insort(self._holders, served_id)
                        self._holders_set.add(served_id)
                        self._discard_candidate(served_id)
                    n_transmitted, pre_window = pop_voice(served_id, 1)
                    phy_rec.append(record_index)
                    phy_tids.append(served_id)
                    phy_counts.append(n_transmitted)
                    phy_aux.append(pre_window)
                    phy_voice.append(True)
                    phy_frames.append(frame)
                    phy_chans.append(float(chan_src[served_id]))
                    phy_thrs.append(np.nan)
                else:
                    if frame_data_tids is not None and served_id in frame_data_tids:
                        # Same-frame repeat grant: resolve everything
                        # deferred so far, then re-read the live buffer —
                        # the engine skips a repeat whose earlier grants
                        # drained the buffer (the slot stays allocated).
                        if clock:
                            clock.stop()
                        self._flush_phy(clock)
                        if clock:
                            clock.start("mac")
                        if int(occupancy_array[served_id]) <= 0:
                            continue
                    elif frame_data_tids is None:
                        frame_data_tids = {served_id}
                    else:
                        frame_data_tids.add(served_id)
                    any_data = True
                    phy_rec.append(record_index)
                    phy_tids.append(served_id)
                    phy_counts.append(1)
                    phy_aux.append(1)
                    phy_voice.append(False)
                    phy_frames.append(frame)
                    phy_chans.append(float(chan_src[served_id]))
                    phy_thrs.append(np.nan)
                continue

            # Idle information slot: convert it into N_x request minislots.
            # The pools here are tiny (a handful of contenders), so the
            # resolution runs on Python scalars over pooled draws — the
            # same doubles, comparisons and winner choices as the kernel's
            # per-minislot ``rng.random(size=k)`` calls.
            if not local_ids:
                idle += minislots
                continue
            ms_ids = local_ids
            ms_probs = local_probs
            won = None
            for _ in range(minislots):
                k = len(ms_ids)
                if k == 0:
                    idle += 1
                    continue
                n_transmitters = 0
                index = -1
                for position, draw in enumerate(pool_take(k).tolist()):
                    if draw < ms_probs[position]:
                        n_transmitters += 1
                        index = position
                attempts += n_transmitters
                if n_transmitters == 1:
                    if ms_ids is local_ids:
                        ms_ids = list(ms_ids)
                        ms_probs = list(ms_probs)
                    if won is None:
                        won = []
                    won.append(ms_ids.pop(index))
                    ms_probs.pop(index)
                elif n_transmitters == 0:
                    idle += 1
                else:
                    collisions += 1
            if not won:
                continue
            dropped = None
            for winner in won:
                pending.append(winner)
                pending_res.append(False)
                # A voice winner is about to obtain a reservation and stops
                # contending; a data winner keeps contending in later
                # converted slots while its (frozen) buffer runs deep.
                if winner < nv or occ_list[winner] <= 1:
                    if dropped is None:
                        dropped = set()
                    dropped.add(winner)
            if dropped is not None:
                kept_ids = []
                kept_probs = []
                for tid, probability in zip(local_ids, local_probs):
                    if tid not in dropped:
                        kept_ids.append(tid)
                        kept_probs.append(probability)
                local_ids = kept_ids
                local_probs = kept_probs

        # Requests that succeeded too late in the frame to get a slot.
        if queue is not None:
            leftovers = [
                protocol.make_request_for_id(population, pending[index], frame)
                for index in range(cursor, len(pending))
                if not pending_res[index]
            ]
            if leftovers:
                queue.extend(leftovers)
                self._mirrors_dirty = True
        record[0] = attempts
        record[1] = collisions
        record[2] = idle
        record[3] = allocated
        record[4] = len(queue) if queue is not None else 0
        if clock:
            clock.stop()

        if any_data:
            # Data outcomes feed back into buffer state, so the next
            # frame's decisions need them resolved.
            self._flush_phy(clock)
        return True

    @kernel
    def _csi_frame(self, frame, snapshot, drops, clock) -> bool:
        """CHARISMA frame inline (fast RNG mode): pooled CSI noise.

        Replicates ``CharismaProtocol.run_frame_batch`` on an empty-queue
        frame: the fast matrix contention kernel against the contention
        child stream, one batched CSI estimate over reservation holders +
        winners — standard normals prefetched per block from the dedicated
        estimation stream and scaled by the amplitude-independent noise
        std, exactly the values ``estimate_amplitudes`` would produce —
        then the frame's shared mode lookup, the stable priority ranking
        and the ranked allocation walk.  Voice grants defer their PHY
        outcome to the block flush; frames with data grants flush at frame
        end because data outcomes feed back into buffer state.  Parity
        CHARISMA never reaches this path (``supports_macro_lookahead`` is
        False without the dedicated CSI stream) and keeps its bit-exact
        per-frame fallback.
        """
        if clock:
            clock.start("mac")
        protocol = self.protocol
        population = self.population
        queue = protocol.request_queue
        reservations = protocol.reservations
        occupancy_array = population.occupancy
        occ_list = (
            occupancy_array.tolist()
            if occupancy_array.shape[0] <= 256
            else occupancy_array
        )
        in_talkspurt = population.in_talkspurt
        nv = self._nv

        # Reservation release + the holders' auto-generated requests
        # (ascending id — the ``reserved_ids`` order).
        reserved: List[int] = []
        to_release = None
        for tid in self._holders:
            if occ_list[tid] > 0:
                reserved.append(tid)
            elif not in_talkspurt[tid]:
                if to_release is None:
                    to_release = []
                to_release.append(tid)
        if to_release is not None:
            for tid in to_release:
                reservations.release(tid)
                self._holders.remove(tid)
                self._holders_set.discard(tid)

        # Request phase: the fast matrix kernel draws directly from the
        # contention child stream (the runner's uniform pool never opens
        # during a CSI-scheduled frame, so nothing can interleave).  A
        # quiet pool short-circuits to the kernel's own empty-input result
        # — no draw, every minislot idle — without paying the call.
        if self._cand_ids:
            probs = self._cand_probs_arr
            if probs is None:
                probs = self._cand_probs_arr = np.asarray(
                    self._cand_probs, dtype=float
                )
            contention = run_contention_ids(
                self._cand_ids,
                probs,
                self._auction_slots,
                protocol.contention_rng,
                fast=True,
            )
            winner_ids = contention.winner_ids
            attempts = contention.attempts
            collisions = contention.collisions
            idle_slots = contention.idle_slots
        else:
            winner_ids = []
            attempts = collisions = 0
            idle_slots = self._auction_slots
            m = _metrics.METRICS
            if m.enabled:
                m.inc("contention.rounds", idle_slots)

        record_index = len(self._records)
        record = [attempts, collisions, idle_slots, 0, 0, 0, 0]
        if drops:
            counted = 0
            for _tid, _dropped, in_window in drops:
                counted += in_window
            record[6] = counted
        self._records.append(record)

        n_reserved = len(reserved)
        all_ids = reserved + winner_ids if winner_ids else reserved
        n_pending = len(all_ids)
        if n_pending == 0:
            if clock:
                clock.stop()
            return True

        # CSI estimation: one pooled noise draw for holders + winners.
        tid_arr = np.asarray(all_ids, dtype=np.int64)
        amplitudes = snapshot.amplitude[tid_arr]
        std = self._csi_std
        if std == 0.0:
            estimates = amplitudes
        else:
            estimates = amplitudes + std * self._csi_pool.take(n_pending)
            np.maximum(estimates, 0.0, out=estimates)

        # Mode lookup, inline: ``searchsorted(thresholds) - 1`` is the mode
        # index and the capacity LUTs are addressed at ``index + 1``, so the
        # raw searchsorted count is itself the LUT row.  Estimates of 0.0
        # (clamped noise) log to -inf and land on the outage row.
        with np.errstate(divide="ignore"):
            snr_db = self._csi_mean_snr + 20.0 * np.log10(estimates)
        indices_p1 = np.searchsorted(self._csi_thresholds, snr_db, side="right")
        throughput = self._thr_by_idx[indices_p1]
        per_slot = self._packs_by_idx[indices_p1]

        # Priority metric, inline over the same gathers: every pending row
        # arrived this frame, so the data urgency term is exactly 0 and the
        # voice horizon is the head-of-line packet's frames-to-deadline —
        # an integer in [0, deadline], served from the pow() LUT.  The
        # term-by-term composition (weighted + urgency + offset) matches
        # ``priorities_columns`` float for float.
        voice = tid_arr < nv
        head = population.head_created[tid_arr]
        horizon = np.maximum(0, head + (self._csi_vdl - frame))
        urgency = np.where(voice, self._csi_urg_lut[horizon], 0.0)
        alpha_voice, alpha_data = self._csi_alpha
        if alpha_voice == alpha_data:
            weighted = alpha_voice * throughput
        else:
            weighted = np.where(voice, alpha_voice, alpha_data) * throughput
        offset = np.where(voice, self._csi_voffset, 0.0)
        values = weighted + urgency + offset
        order = np.argsort(-values, kind="stable")

        # Ranked allocation walk, inline: decision-for-decision the
        # allocator's ``allocate_columns`` over the same ranked rows
        # (voice takes one slot, data packs ceil(occupancy/packets) slots,
        # zero-packet outage defers unless a near-deadline voice request
        # escapes at the most robust mode).
        slots_left = self._csi_slots
        margin = self._csi_margin
        per_list = per_slot.tolist()
        thr_list = throughput.tolist()
        g_tids: List[int] = []
        g_nslots: List[int] = []
        g_caps: List[int] = []
        g_thrs: List[float] = []
        unserved_rows: List[int] = []
        deferred_rows: List[int] = []
        for row in order.tolist():
            tid = all_ids[row]
            occupancy = occ_list[tid]
            if occupancy == 0:
                continue
            if slots_left <= 0:
                unserved_rows.append(row)
                continue
            packets = per_list[row]
            mode_throughput = thr_list[row]
            if packets == 0:
                if tid < nv and head[row] >= 0 and horizon[row] <= margin:
                    packets, mode_throughput = 1, self._csi_lowest_thr
                else:
                    deferred_rows.append(row)
                    continue
            if tid < nv:
                n_slots = 1
            else:
                needed = -(-int(occupancy) // packets) if packets > 1 else int(
                    occupancy
                )
                n_slots = needed if needed < slots_left else slots_left
                if n_slots < 1:
                    n_slots = 1
            g_tids.append(tid)
            g_nslots.append(n_slots)
            g_caps.append(packets * n_slots)
            g_thrs.append(mode_throughput)
            slots_left -= n_slots

        # Newly served voice winners acquire a reservation; only rows
        # after the reservation-holder prefix can be newly served.
        if g_tids and n_pending > n_reserved:
            allocated_ids = set(g_tids)
            for position in range(n_reserved, n_pending):
                tid = all_ids[position]
                if tid < nv and tid in allocated_ids:
                    reservations.grant(tid, frame)
                    insort(self._holders, tid)
                    self._holders_set.add(tid)
                    self._discard_candidate(tid)

        # Unserved / deferred requests go back to the queue (with-queue
        # variant) or are dropped; the request-column pool is materialised
        # only on this rare path — the common all-served frame never builds
        # it.  Queueing flips the candidate rule, so the mirrors
        # resynchronise once the queue drains.
        if (unserved_rows or deferred_rows) and queue is not None:
            pending = protocol._pending_columns(
                population,
                np.asarray(reserved, dtype=np.int64),
                np.asarray(winner_ids, dtype=np.int64),
                estimates,
                frame,
            )
            if protocol.queue_unserved_rows(
                pending, unserved_rows + deferred_rows
            ):
                self._mirrors_dirty = True
        record[4] = len(queue) if queue is not None else 0

        # Execute the grants: deterministic voice pops now, one deferred
        # Bernoulli resolution per flush, rows in grant (priority) order —
        # exactly the engine executor's element order.
        any_data = False
        if g_tids:
            record[3] = sum(g_nslots)
            chan_src = snapshot.snr_db if self._reuse_snr else snapshot.amplitude
            phy_rec = self._phy_rec
            phy_tids = self._phy_tids
            phy_counts = self._phy_counts
            phy_aux = self._phy_aux
            phy_voice = self._phy_voice
            phy_frames = self._phy_frames
            phy_chans = self._phy_chans
            phy_thrs = self._phy_thrs
            pop_voice = population.transmit_voice_pop
            for position, tid in enumerate(g_tids):
                capacity = g_caps[position]
                phy_rec.append(record_index)
                phy_tids.append(tid)
                if tid < nv:
                    n_transmitted, pre_window = pop_voice(tid, capacity)
                    phy_counts.append(n_transmitted)
                    phy_aux.append(pre_window)
                    phy_voice.append(True)
                else:
                    any_data = True
                    occupancy = int(occ_list[tid])
                    phy_counts.append(
                        capacity if capacity < occupancy else occupancy
                    )
                    phy_aux.append(capacity)
                    phy_voice.append(False)
                phy_frames.append(frame)
                phy_chans.append(float(chan_src[tid]))
                phy_thrs.append(g_thrs[position])
        if clock:
            clock.stop()

        if any_data:
            # Data outcomes feed back into buffer state, so the next
            # frame's decisions need them resolved.
            self._flush_phy(clock)
        return True

    # ------------------------------------------------------- fallback frame
    def _fallback_frame(self, frame, snapshot, drops, clock) -> None:
        """One frame through the protocol's own kernel, streams realigned."""
        engine = self.engine
        population = self.population
        self._pool.close()
        if self._csi_pool is not None:
            self._csi_pool.close()
        self._flush_phy(clock)
        self._commit_records(clock)
        m = _metrics.METRICS
        if m.enabled:
            m.inc("macro.fallback_frames")
        if clock is not None and clock.tracer is not None:
            clock.tracer.event("macro.fallback", frame=frame)

        if clock:
            clock.start("mac")
        loss_before = population.voice_loss_total
        outcome = self.protocol.run_frame_batch(frame, population, snapshot)
        if clock:
            clock.stop()
            clock.start("phy")
        if outcome.grants is not None:
            data_delivered = engine._execute_grant_columns(
                outcome.grants, snapshot, frame
            )
        else:
            data_delivered = engine._execute_allocations_batch(
                outcome, snapshot, frame
            )
        if clock:
            clock.stop()
            clock.start("metrics")
        counted = 0
        for _tid, _dropped, in_window in drops:
            counted += in_window
        voice_losses = counted + population.voice_loss_total - loss_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        if clock:
            clock.stop()
        self._mirrors_dirty = True

    # ------------------------------------------------------------- plumbing
    @kernel
    def _flush_phy(self, clock) -> None:
        """Resolve all deferred transmissions in one batched PHY draw."""
        if not self._phy_tids:
            return
        if clock:
            clock.start("phy")
        counts = np.asarray(self._phy_counts, dtype=np.int64)
        chans = np.asarray(self._phy_chans, dtype=float)
        throughputs = (
            np.asarray(self._phy_thrs, dtype=float) if self._adaptive else None
        )
        delivered = self.error_model.transmit_batch(
            None if self._reuse_snr else chans,
            counts,
            throughputs,
            snr_db=chans if self._reuse_snr else None,
        )
        population = self.population
        records = self._records
        is_voice = np.asarray(self._phy_voice, dtype=bool)
        n_voice_rows = int(is_voice.sum())
        if n_voice_rows:
            # All deferred voice rows resolve through one accel pass —
            # per-row arithmetic and per-terminal accumulation fused; only
            # the (rare) errored rows loop back for record attribution.
            voice_rows = (
                np.arange(is_voice.shape[0])
                if n_voice_rows == is_voice.shape[0]
                else np.nonzero(is_voice)[0]
            )
            tids = np.asarray(self._phy_tids, dtype=np.int64)
            aux = np.asarray(self._phy_aux, dtype=np.int64)
            errored_rows, errors = population.resolve_voice_outcomes(
                tids[voice_rows],
                counts[voice_rows],
                aux[voice_rows],
                delivered[voice_rows],
            )
            phy_rec = self._phy_rec
            for k in errored_rows.tolist():
                records[phy_rec[int(voice_rows[k])]][6] += int(errors[k])
        if n_voice_rows < is_voice.shape[0]:
            occupancy = population.occupancy
            mirrors_ok = not self._mirrors_dirty
            transmit = population.transmit
            delivered_list = delivered.tolist()
            for j in np.nonzero(~is_voice)[0].tolist():
                tid = self._phy_tids[j]
                n_delivered = delivered_list[j]
                transmit(tid, self._phy_aux[j], n_delivered, self._phy_frames[j])
                records[self._phy_rec[j]][5] += n_delivered
                if mirrors_ok and n_delivered and occupancy[tid] == 0:
                    self._discard_candidate(tid)
        self._phy_rec.clear()
        self._phy_tids.clear()
        self._phy_counts.clear()
        self._phy_aux.clear()
        self._phy_voice.clear()
        self._phy_frames.clear()
        self._phy_chans.clear()
        self._phy_thrs.clear()
        if clock:
            clock.stop()

    def _commit_records(self, clock) -> None:
        if not self._records:
            return
        if clock:
            clock.start("metrics")
        self.collector.record_block(self._records)
        self._records = []
        if clock:
            clock.stop()

    # -------------------------------------------------------------- mirrors
    def _sync_mirrors(self) -> None:
        """Rebuild the holder/candidate mirrors from authoritative state."""
        ids, probs = self.protocol.contention_candidate_ids(self.population)
        self._cand_ids = ids.tolist()
        self._cand_probs = probs.tolist()
        self._cand_probs_arr = None
        holders = self.protocol.reservations.holders()
        self._holders = holders
        self._holders_set = set(holders)
        self._mirrors_dirty = False

    def _update_mirrors(self, plan, offset, drops) -> None:
        """Fold one frame's traffic/drop events into the candidate mirror."""
        toggles = plan.toggles[offset]
        bursts = plan.bursts[offset]
        generated = plan.voice_gen[offset]
        if toggles is None and bursts is None and generated is None and not drops:
            return
        if toggles is not None:
            for tid, now_talking in toggles:
                if not now_talking:
                    # Leaving the talkspurt ends voice candidacy; entering
                    # it is handled by the same frame's generation event.
                    self._discard_candidate(tid)
        if generated is not None:
            holders_set = self._holders_set
            for tid in generated:
                if tid not in holders_set:
                    self._add_candidate(tid, self._voice_p)
        if bursts is not None:
            for tid, _size in bursts:
                self._add_candidate(tid, self._data_p)
        if drops:
            occupancy = self.population.occupancy
            for tid, _dropped, _counted in drops:
                if occupancy[tid] == 0:
                    self._discard_candidate(tid)

    def _add_candidate(self, tid: int, probability: float) -> None:
        ids = self._cand_ids
        index = bisect_left(ids, tid)
        if index < len(ids) and ids[index] == tid:
            return
        ids.insert(index, tid)
        self._cand_probs.insert(index, probability)
        self._cand_probs_arr = None

    def _discard_candidate(self, tid: int) -> None:
        ids = self._cand_ids
        index = bisect_left(ids, tid)
        if index < len(ids) and ids[index] == tid:
            del ids[index]
            del self._cand_probs[index]
            self._cand_probs_arr = None
