"""Macro-stepped execution of the columnar frame loop.

The per-frame columnar engine pays a fixed dispatch floor of ~25 small
NumPy kernel calls per 2.5 ms frame — traffic advance, channel snapshot,
candidate masks, contention draws, grant gathers, a PHY batch and metrics
bookkeeping.  :class:`MacroRunner` advances the simulation in blocks of
``Scenario.macro_frames`` frames instead, with O(1) dispatches per block
for the predictable work:

* **traffic** — :meth:`~repro.traffic.population.TerminalPopulation.plan_frames`
  pre-draws the whole block's source events in per-frame order and each
  frame replays its recorded events with a handful of scalar writes;
* **contention** — permission draws are served from a :class:`RandomPool`
  prefetched from the contention stream.  NumPy generators consume their
  bit stream element by element, so a pool of ``N`` uniforms is exactly the
  next ``N`` per-minislot draws regardless of how the per-frame path would
  have partitioned the calls; when a frame's true consumption falls short
  of the prefetch (a winner shrinks later minislots, a state change ends
  the block), the pool **rolls the generator back and replays** exactly the
  consumed prefix, leaving the stream bit-identical to per-frame stepping;
* **reservation PHY** — voice-reservation transmissions pop their packets
  deterministically at their own frame (a transmitted voice packet leaves
  the buffer whether or not it is received), while the Bernoulli outcomes
  of many frames resolve in one batched binomial draw — again bit-exact,
  because batched binomials consume the error stream element-wise;
* **metrics** — per-frame statistics accumulate in plain lists and cross
  the collector boundary once per block.

A frame the fast path cannot express exactly — non-empty request queue, a
protocol without lookahead support (CHARISMA draws CSI estimates every
frame), DRMA/RAMA frames with live contenders — falls back to the
protocol's own ``run_frame_batch`` after flushing all deferred state, so
the surrounding frames still enjoy the fused traffic/channel/metrics path.
In ``rng_mode="parity"`` the whole construction is **bit-identical** to
``macro_frames=1``; ``tests/sim/test_backend_parity.py`` sweeps
``macro_frames`` in {1, 4, 16, 64} over all six protocols to prove it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import List, Optional

import numpy as np

from repro.accel import contention_round_scan
from repro.lint.contracts import kernel
from repro.obs import metrics as _metrics

__all__ = ["MacroRunner", "RandomPool"]


class RandomPool:
    """Prefetched uniform draws with exact roll-back/replay.

    ``take(n)`` hands out the next ``n`` doubles of the generator's stream
    from a prefetched buffer; ``unwind(n)`` returns the most recent ``n``
    (a pure pointer move — nothing re-enters the generator); ``close()``
    restores the generator to the pre-prefetch state and re-consumes
    exactly the handed-out prefix, so after closing, the generator state is
    indistinguishable from having made the per-frame draws directly.
    """

    __slots__ = ("_rng", "_chunk", "_state", "_buffer", "_position")

    def __init__(self, rng: np.random.Generator, chunk: int = 4096) -> None:
        self._rng = rng
        self._chunk = int(chunk)
        self._state = None
        self._buffer: Optional[np.ndarray] = None
        self._position = 0

    def take(self, n: int) -> np.ndarray:
        """The next ``n`` stream doubles (a view into the prefetch buffer)."""
        buffer = self._buffer
        if buffer is None or self._position + n > buffer.shape[0]:
            self._refill(n)
            buffer = self._buffer
        start = self._position
        self._position = start + n
        return buffer[start : self._position]

    def unwind(self, n: int) -> None:
        """Give back the most recently taken ``n`` doubles (pointer move)."""
        self._position -= n

    def close(self) -> int:
        """Roll back and replay: leave the generator exactly where
        per-frame draws of the consumed prefix would have left it.

        Returns the number of prefetched-but-unconsumed doubles rolled
        back (0 when nothing was open), and counts each truncating close
        on the ``pool.replay_truncations`` metric.
        """
        buffer = self._buffer
        if buffer is None:
            return 0
        unused = buffer.shape[0] - self._position
        self._rng.bit_generator.state = self._state
        if self._position:
            self._rng.random(self._position)
        self._state = None
        self._buffer = None
        self._position = 0
        if unused:
            m = _metrics.METRICS
            if m.enabled:
                m.inc("pool.replay_truncations")
        return unused

    def _refill(self, n: int) -> None:
        self.close()
        self._state = self._rng.bit_generator.state
        self._buffer = self._rng.random(max(n, self._chunk))
        self._position = 0


class MacroRunner:
    """Executes the engine's frame loop in macro blocks (see module doc)."""

    def __init__(self, engine) -> None:
        self.engine = engine
        self.population = engine.population
        self.protocol = engine.protocol
        self.collector = engine.collector
        self.error_model = engine.error_model
        protocol = self.protocol
        self._supported = bool(
            getattr(protocol, "supports_macro_lookahead", False)
        )
        self._minislots = protocol.macro_minislots() if self._supported else None
        self._data_cap = protocol.macro_data_slot_cap() if self._supported else None
        self._info_slots = protocol.frame_structure.info_slots
        self._reuse_snr = engine._reuse_snapshot_snr
        self._adaptive = protocol.modem.is_adaptive
        self._pool = RandomPool(protocol.contention_rng)
        self._voice_p = protocol.permission.voice_probability
        self._data_p = protocol.permission.data_probability
        self._nv = self.population.n_voice

        # Mirrors of the MAC state the fast path reads every frame, updated
        # incrementally from traffic/drop/grant events and resynchronised
        # from the authoritative structures after any fallback frame.
        self._mirrors_dirty = True
        # Frame index this runner expects to resume at; frames advanced
        # outside run_block (engine.step() interleaving) invalidate the
        # mirrors, which only track events the runner itself executed.
        self._expected_frame: Optional[int] = None
        self._holders: List[int] = []
        self._holders_set = set()
        self._cand_ids: List[int] = []
        self._cand_probs: List[float] = []
        self._cand_probs_arr: Optional[np.ndarray] = None

        # Deferred voice PHY rows (parallel lists) and buffered per-frame
        # statistic records ([attempts, collisions, idle, allocated,
        # queued, data_delivered, voice_losses]).
        self._phy_rec: List[int] = []
        self._phy_tids: List[int] = []
        self._phy_counts: List[int] = []
        self._phy_aux: List[int] = []  # voice: pre-window; data: capacity
        self._phy_voice: List[bool] = []
        self._phy_frames: List[int] = []
        self._phy_chans: List[float] = []
        self._phy_thrs: List[float] = []
        self._records: List[List] = []

    # ------------------------------------------------------------------ API
    def run_block(self, n_frames: int) -> None:
        """Advance ``n_frames`` frames as one macro block."""
        engine = self.engine
        population = self.population
        clock = engine._clock
        start = engine._frame_index
        if start != self._expected_frame:
            # Frames ran outside this runner (interleaved engine.step());
            # the incremental mirrors no longer describe current state.
            self._mirrors_dirty = True

        tracer = clock.tracer if clock is not None else None
        if clock:
            clock.start("traffic")
        plan = population.plan_frames(start, n_frames)
        if clock:
            clock.stop()
        if tracer is not None:
            tracer.event("macro.plan", frames=n_frames, start_frame=start)

        for offset in range(n_frames):
            frame = start + offset
            if clock:
                clock.start("channel")
            snapshot = engine._next_snapshot()
            if clock:
                clock.stop()
                clock.start("traffic")
            population.apply_planned_frame(plan, frame)
            drops = population.drop_expired_events(frame)
            if clock:
                clock.stop()
            if not self._fast_frame(plan, offset, frame, snapshot, drops, clock):
                self._fallback_frame(frame, snapshot, drops, clock)
            engine._frame_index = frame + 1

        self._flush_phy(clock)
        self._commit_records(clock)
        unused = self._pool.close()
        if tracer is not None and unused:
            tracer.event("macro.rollback", unused_draws=unused)
        self._expected_frame = engine._frame_index

    # ----------------------------------------------------------- fast frame
    def _fast_frame(self, plan, offset, frame, snapshot, drops, clock) -> bool:
        """Execute one frame inline; ``False`` defers to the per-frame kernel."""
        if not self._supported:
            return False
        protocol = self.protocol
        queue = protocol.request_queue
        if queue is not None and len(queue):
            return False
        if self._mirrors_dirty:
            self._sync_mirrors()
        else:
            self._update_mirrors(plan, offset, drops)
        candidates = self._cand_ids
        minislots = self._minislots
        if candidates and minislots is None:
            # Quiet-only protocols (RAMA's auction always resolves, DRMA's
            # winners re-enter the same frame's slot loop): live contenders
            # require the full kernel.
            return False

        if clock:
            clock.start("mac")
        population = self.population
        occupancy_array = population.occupancy
        # Small populations: one bulk tolist beats the dozens of scalar
        # reads the holder/winner loops make; large ones read just the few
        # entries they need straight from the array.
        occ_list = (
            occupancy_array.tolist()
            if occupancy_array.shape[0] <= 256
            else occupancy_array
        )
        in_talkspurt = population.in_talkspurt

        # Reservation release + FCFS reserved service, ascending holder id.
        served: List[int] = []
        slots_left = self._info_slots
        to_release = None
        for tid in self._holders:
            if occ_list[tid] > 0:
                if slots_left > 0:
                    served.append(tid)
                    slots_left -= 1
            elif not in_talkspurt[tid]:
                if to_release is None:
                    to_release = []
                to_release.append(tid)
        if to_release is not None:
            reservations = protocol.reservations
            for tid in to_release:
                reservations.release(tid)
                self._holders.remove(tid)
                self._holders_set.discard(tid)

        # Request phase.
        if candidates:
            winners, attempts, collisions, idle = self._run_contention(minislots)
        else:
            winners = ()
            attempts = collisions = 0
            idle = protocol.macro_quiet_idle_slots(len(served))

        # Allocation phase: per-grant capacities in one channel lookup.
        voice_winners: List[int] = []
        data_winners: List[int] = []
        if winners:
            nv = self._nv
            for tid in winners:
                (voice_winners if tid < nv else data_winners).append(tid)
        grant_order = served + voice_winners + data_winners
        if self._adaptive and grant_order:
            per_slot_arr, thr_arr = protocol.grant_capacity_columns(
                np.asarray(grant_order, dtype=np.int64), snapshot
            )
            per_slot_list = per_slot_arr.tolist()
            thr_list = thr_arr.tolist()
        else:
            per_slot_list = thr_list = None

        voice_rows: List = []  # (tid, capacity, throughput)
        data_rows: List = []
        allocated = len(served)
        for position, tid in enumerate(served):
            if per_slot_list is None:
                voice_rows.append((tid, 1, None))
            else:
                voice_rows.append((tid, per_slot_list[position], thr_list[position]))

        unserved: List[int] = []
        cap_cursor = len(served)
        for tid in voice_winners:
            if slots_left < 1:
                unserved.append(tid)
                cap_cursor += 1
                continue
            if per_slot_list is None:
                voice_rows.append((tid, 1, None))
            else:
                voice_rows.append(
                    (tid, per_slot_list[cap_cursor], thr_list[cap_cursor])
                )
            cap_cursor += 1
            slots_left -= 1
            allocated += 1
            protocol.reservations.grant(tid, frame)
            insort(self._holders, tid)
            self._holders_set.add(tid)
            self._discard_candidate(tid)
        data_cap = self._data_cap
        for tid in data_winners:
            if slots_left < 1:
                unserved.append(tid)
                cap_cursor += 1
                continue
            if per_slot_list is None:
                per_slot, throughput = 1, None
            else:
                per_slot = per_slot_list[cap_cursor]
                throughput = thr_list[cap_cursor]
            cap_cursor += 1
            needed = -(-int(occ_list[tid]) // max(1, per_slot))
            n_slots = needed if needed < slots_left else slots_left
            if n_slots < 1:
                n_slots = 1
            if data_cap is not None and n_slots > data_cap:
                n_slots = data_cap
            slots_left -= n_slots
            allocated += n_slots
            data_rows.append((tid, per_slot * n_slots, throughput))

        # Winners the frame could not serve are queued (with-queue variant)
        # or discarded; queueing changes the candidate rule, so the mirrors
        # resynchronise once the queue drains.
        if unserved and queue is not None:
            queue.extend(
                protocol.make_request_for_id(population, tid, frame)
                for tid in unserved
            )
            self._mirrors_dirty = True
        queued = len(queue) if queue is not None else 0

        # Execute the frame's grants: deterministic buffer pops now, one
        # deferred Bernoulli resolution per flush.  Row order matches the
        # per-frame grant columns (reserved, voice winners, data winners).
        record_index = len(self._records)
        record = [attempts, collisions, idle, allocated, queued, 0, 0]
        if drops:
            counted = 0
            for _tid, _dropped, in_window in drops:
                counted += in_window
            record[6] = counted
        self._records.append(record)

        if voice_rows or data_rows:
            chan_src = snapshot.snr_db if self._reuse_snr else snapshot.amplitude
            phy_rec = self._phy_rec
            phy_tids = self._phy_tids
            phy_counts = self._phy_counts
            phy_aux = self._phy_aux
            phy_voice = self._phy_voice
            phy_frames = self._phy_frames
            phy_chans = self._phy_chans
            phy_thrs = self._phy_thrs
            pop_voice = population.transmit_voice_pop
            for tid, capacity, throughput in voice_rows:
                n_transmitted, pre_window = pop_voice(tid, capacity)
                phy_rec.append(record_index)
                phy_tids.append(tid)
                phy_counts.append(n_transmitted)
                phy_aux.append(pre_window)
                phy_voice.append(True)
                phy_frames.append(frame)
                phy_chans.append(float(chan_src[tid]))
                phy_thrs.append(np.nan if throughput is None else throughput)
            for tid, capacity, throughput in data_rows:
                occupancy = int(occ_list[tid])
                phy_rec.append(record_index)
                phy_tids.append(tid)
                phy_counts.append(
                    capacity if capacity < occupancy else occupancy
                )
                phy_aux.append(capacity)
                phy_voice.append(False)
                phy_frames.append(frame)
                phy_chans.append(float(chan_src[tid]))
                phy_thrs.append(np.nan if throughput is None else throughput)
        if clock:
            clock.stop()

        if data_rows:
            # Data outcomes feed back into buffer state (only delivered
            # packets leave a data buffer), so the next frame's decisions
            # need them resolved — the flush boundary of the lookahead.
            self._flush_phy(clock)
        return True

    @kernel
    def _run_contention(self, n_minislots: int):
        """Pool-fed slotted contention, bit-identical to the live draws.

        Each round covers the remaining minislots against the current
        contender pool in one prefetched matrix; the first exactly-one-
        transmitter row ends the round (later rows would have been drawn
        against a smaller pool, so their prefetched draws are returned to
        the pool untouched) and the next round restarts after the winner.
        """
        ids = self._cand_ids
        probs = self._cand_probs_arr
        if probs is None:
            probs = self._cand_probs_arr = np.asarray(
                self._cand_probs, dtype=float
            )
        m = _metrics.METRICS
        if m.enabled:
            # Pure accumulation — no clock, no draw — so metrics stay
            # legal inside kernel bodies (KRN002 only bans *timing*).
            m.inc("contention.rounds", n_minislots)
        pool = self._pool
        k = len(ids)
        winners: List[int] = []
        attempts = collisions = idle = 0
        done = 0
        active_ids = ids
        while done < n_minislots:
            if k == 0:
                idle += n_minislots - done
                break
            rows = n_minislots - done
            draws = pool.take(rows * k).reshape(rows, k)
            counts, winner_row, winner_col = contention_round_scan(draws, probs)
            if winner_row < 0:
                attempts += int(counts.sum())
                zeros = int(np.count_nonzero(counts == 0))
                idle += zeros
                collisions += rows - zeros
                break
            pool.unwind((rows - winner_row - 1) * k)
            if winner_row:
                head = counts[:winner_row]
                attempts += int(head.sum())
                zeros = int(np.count_nonzero(head == 0))
                idle += zeros
                collisions += winner_row - zeros
            attempts += 1
            if active_ids is self._cand_ids:
                active_ids = list(active_ids)
            winners.append(active_ids.pop(winner_col))
            probs = np.delete(probs, winner_col)
            k -= 1
            done += winner_row + 1
        return winners, attempts, collisions, idle

    # ------------------------------------------------------- fallback frame
    def _fallback_frame(self, frame, snapshot, drops, clock) -> None:
        """One frame through the protocol's own kernel, streams realigned."""
        engine = self.engine
        population = self.population
        self._pool.close()
        self._flush_phy(clock)
        self._commit_records(clock)
        m = _metrics.METRICS
        if m.enabled:
            m.inc("macro.fallback_frames")
        if clock is not None and clock.tracer is not None:
            clock.tracer.event("macro.fallback", frame=frame)

        if clock:
            clock.start("mac")
        loss_before = population.voice_loss_total
        outcome = self.protocol.run_frame_batch(frame, population, snapshot)
        if clock:
            clock.stop()
            clock.start("phy")
        if outcome.grants is not None:
            data_delivered = engine._execute_grant_columns(
                outcome.grants, snapshot, frame
            )
        else:
            data_delivered = engine._execute_allocations_batch(
                outcome, snapshot, frame
            )
        if clock:
            clock.stop()
            clock.start("metrics")
        counted = 0
        for _tid, _dropped, in_window in drops:
            counted += in_window
        voice_losses = counted + population.voice_loss_total - loss_before
        self.collector.record_frame(outcome, data_delivered, voice_losses)
        if clock:
            clock.stop()
        self._mirrors_dirty = True

    # ------------------------------------------------------------- plumbing
    @kernel
    def _flush_phy(self, clock) -> None:
        """Resolve all deferred transmissions in one batched PHY draw."""
        if not self._phy_tids:
            return
        if clock:
            clock.start("phy")
        counts = np.asarray(self._phy_counts, dtype=np.int64)
        chans = np.asarray(self._phy_chans, dtype=float)
        throughputs = (
            np.asarray(self._phy_thrs, dtype=float) if self._adaptive else None
        )
        delivered = self.error_model.transmit_batch(
            None if self._reuse_snr else chans,
            counts,
            throughputs,
            snr_db=chans if self._reuse_snr else None,
        )
        population = self.population
        records = self._records
        occupancy = population.occupancy
        mirrors_ok = not self._mirrors_dirty
        record_outcome = population.record_voice_outcome
        transmit = population.transmit
        for j, n_delivered in enumerate(delivered.tolist()):
            tid = self._phy_tids[j]
            record = records[self._phy_rec[j]]
            if self._phy_voice[j]:
                errored = record_outcome(
                    tid, self._phy_counts[j], self._phy_aux[j], n_delivered
                )
                if errored:
                    record[6] += errored
            else:
                transmit(tid, self._phy_aux[j], n_delivered, self._phy_frames[j])
                record[5] += n_delivered
                if mirrors_ok and n_delivered and occupancy[tid] == 0:
                    self._discard_candidate(tid)
        self._phy_rec.clear()
        self._phy_tids.clear()
        self._phy_counts.clear()
        self._phy_aux.clear()
        self._phy_voice.clear()
        self._phy_frames.clear()
        self._phy_chans.clear()
        self._phy_thrs.clear()
        if clock:
            clock.stop()

    def _commit_records(self, clock) -> None:
        if not self._records:
            return
        if clock:
            clock.start("metrics")
        self.collector.record_block(self._records)
        self._records = []
        if clock:
            clock.stop()

    # -------------------------------------------------------------- mirrors
    def _sync_mirrors(self) -> None:
        """Rebuild the holder/candidate mirrors from authoritative state."""
        ids, probs = self.protocol.contention_candidate_ids(self.population)
        self._cand_ids = ids.tolist()
        self._cand_probs = probs.tolist()
        self._cand_probs_arr = None
        holders = self.protocol.reservations.holders()
        self._holders = holders
        self._holders_set = set(holders)
        self._mirrors_dirty = False

    def _update_mirrors(self, plan, offset, drops) -> None:
        """Fold one frame's traffic/drop events into the candidate mirror."""
        toggles = plan.toggles[offset]
        bursts = plan.bursts[offset]
        generated = plan.voice_gen[offset]
        if toggles is None and bursts is None and generated is None and not drops:
            return
        if toggles is not None:
            for tid, now_talking in toggles:
                if not now_talking:
                    # Leaving the talkspurt ends voice candidacy; entering
                    # it is handled by the same frame's generation event.
                    self._discard_candidate(tid)
        if generated is not None:
            holders_set = self._holders_set
            for tid in generated:
                if tid not in holders_set:
                    self._add_candidate(tid, self._voice_p)
        if bursts is not None:
            for tid, _size in bursts:
                self._add_candidate(tid, self._data_p)
        if drops:
            occupancy = self.population.occupancy
            for tid, _dropped, _counted in drops:
                if occupancy[tid] == 0:
                    self._discard_candidate(tid)

    def _add_candidate(self, tid: int, probability: float) -> None:
        ids = self._cand_ids
        index = bisect_left(ids, tid)
        if index < len(ids) and ids[index] == tid:
            return
        ids.insert(index, tid)
        self._cand_probs.insert(index, probability)
        self._cand_probs_arr = None

    def _discard_candidate(self, tid: int) -> None:
        ids = self._cand_ids
        index = bisect_left(ids, tid)
        if index < len(ids) and ids[index] == tid:
            del ids[index]
            del self._cand_probs[index]
            self._cand_probs_arr = None
