"""Span/trace API with parent/child nesting and a JSON-lines sink.

A trace file is newline-delimited JSON.  The first record is always a
header carrying :data:`TRACE_SCHEMA_VERSION`; every later record is either
a completed span or a point event::

    {"record": "header", "schema_version": 1, "clock": "perf_counter", ...}
    {"record": "span", "id": 3, "parent": 2, "name": "phase.mac",
     "start_s": 0.0123, "duration_s": 0.0004}
    {"record": "event", "id": 7, "parent": 2, "name": "macro.fallback",
     "at_s": 0.0181, "attrs": {"frame": 41}}

Spans are written when they *end*, so file order is completion order (a
child always precedes its parent); readers reconstruct nesting from the
``parent`` ids, never from line order.  ``start_s`` is the raw monotonic
reading from :mod:`repro.obs.clock` — only differences within one file are
meaningful.

The process-global :data:`TRACER` is ``None`` unless tracing was explicitly
installed; instrumented code reads it through the module attribute
(``_obs_trace.TRACER``), so the disabled cost is one attribute check.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import IO, Any, Dict, Iterator, List, Optional, Protocol, Tuple, Union

from repro.obs import clock as _clock

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "PHASES",
    "TraceSink",
    "JsonLinesTraceSink",
    "ListTraceSink",
    "Tracer",
    "PhaseRecorder",
    "TRACER",
    "install_tracer",
    "uninstall_tracer",
    "tracing",
    "span",
    "event",
]

#: Bump on any backwards-incompatible change to the record shapes above.
TRACE_SCHEMA_VERSION = 1

#: Engine phase order — one ``phase.<name>`` span each per frame.
PHASES = ("channel", "traffic", "mac", "phy", "metrics")


class TraceSink(Protocol):
    """Anything that can absorb trace records (one dict per record)."""

    def write(self, record: Dict[str, Any]) -> None: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


class JsonLinesTraceSink:
    """Append-only JSON-lines file sink."""

    def __init__(self, path: Union[str, Any]) -> None:
        self.path = str(path)
        self._fh: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"trace sink already closed: {self.path}")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        state = "open" if self._fh is not None else "closed"
        return f"JsonLinesTraceSink({self.path!r}, {state})"


class ListTraceSink:
    """In-memory sink for tests: records accumulate on :attr:`records`."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.flushes = 0

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def flush(self) -> None:
        self.flushes += 1

    def close(self) -> None:
        pass


class Tracer:
    """Writes nested spans and events to a sink.

    Not thread-safe by design: a tracer belongs to the (single) thread
    driving simulations.  Parallel executors therefore trace only their
    serial paths; worker processes never see the parent's tracer.
    """

    def __init__(
        self, sink: TraceSink, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self._sink = sink
        self._next_id = 1
        # (id, name, start_s, attrs) for every open span, root first.
        self._stack: List[Tuple[int, str, float, Dict[str, Any]]] = []
        header: Dict[str, Any] = {
            "record": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
        }
        if meta:
            for key, value in meta.items():
                header.setdefault(key, value)
        sink.write(header)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    # ---------------------------------------------------------------- spans
    def begin(self, name: str, **attrs: Any) -> None:
        """Open a span; it becomes the parent of spans opened before end()."""
        span_id = self._next_id
        self._next_id += 1
        self._stack.append((span_id, name, _clock.now(), attrs))

    def end(self) -> None:
        """Close the innermost open span and write its record."""
        end_s = _clock.now()
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        span_id, name, start_s, attrs = self._stack.pop()
        record: Dict[str, Any] = {
            "record": "span",
            "id": span_id,
            "parent": self._stack[-1][0] if self._stack else None,
            "name": name,
            "start_s": start_s,
            "duration_s": end_s - start_s,
        }
        if attrs:
            record["attrs"] = attrs
        self._sink.write(record)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """``with tracer.span("phase.mac", frames=16): ...``"""
        self.begin(name, **attrs)
        try:
            yield
        finally:
            self.end()

    def event(self, name: str, **attrs: Any) -> None:
        """Write a zero-duration point event under the current span."""
        event_id = self._next_id
        self._next_id += 1
        record: Dict[str, Any] = {
            "record": "event",
            "id": event_id,
            "parent": self._stack[-1][0] if self._stack else None,
            "name": name,
            "at_s": _clock.now(),
        }
        if attrs:
            record["attrs"] = attrs
        self._sink.write(record)

    # ------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        """Close any spans left open (e.g. on error), then the sink."""
        while self._stack:
            self.end()
        self._sink.flush()
        self._sink.close()

    def __repr__(self) -> str:
        return f"Tracer(depth={self.depth}, sink={self._sink!r})"


class PhaseRecorder:
    """Drop-in phase clock: per-phase second totals plus optional spans.

    Same ``start(phase)`` / ``stop()`` bracket API as the engine's old
    private ``_PhaseClock``, so `MacroRunner`'s call sites are unchanged —
    but each bracket now *also* emits a real ``phase.<name>`` span when a
    tracer is attached, which is how ``obs summarize`` reproduces the
    ``enable_phase_timing`` split from a trace file.
    """

    __slots__ = ("times", "tracer", "phase", "_t0")

    def __init__(
        self, times: Dict[str, float], tracer: Optional[Tracer] = None
    ) -> None:
        self.times = times
        self.tracer = tracer
        #: Name of the phase currently open ("" between brackets) — the
        #: kernel dispatch counter reads this to attribute entries.
        self.phase = ""
        self._t0 = 0.0

    def start(self, phase: str) -> None:
        self.phase = phase
        tracer = self.tracer
        if tracer is not None:
            tracer.begin("phase." + phase)
        self._t0 = _clock.now()

    def stop(self) -> None:
        elapsed = _clock.now() - self._t0
        times = self.times
        phase = self.phase
        times[phase] = times.get(phase, 0.0) + elapsed
        if self.tracer is not None:
            self.tracer.end()
        self.phase = ""

    def __repr__(self) -> str:
        return f"PhaseRecorder(phase={self.phase!r}, traced={self.tracer is not None})"


#: Process-global tracer; ``None`` = tracing disabled (the default).
TRACER: Optional[Tracer] = None


def install_tracer(
    target: Union[str, Any, TraceSink],
    meta: Optional[Dict[str, Any]] = None,
) -> Tracer:
    """Install a process-global tracer writing to ``target``.

    ``target`` is a path (opened as a :class:`JsonLinesTraceSink`) or an
    existing sink.  Replacing an installed tracer closes the old one.
    """
    global TRACER
    if TRACER is not None:
        uninstall_tracer()
    sink: TraceSink
    if hasattr(target, "write") and hasattr(target, "close"):
        sink = target  # type: ignore[assignment]
    else:
        sink = JsonLinesTraceSink(target)
    TRACER = Tracer(sink, meta=meta)
    return TRACER


def uninstall_tracer() -> None:
    """Close and remove the process-global tracer (no-op when absent)."""
    global TRACER
    tracer = TRACER
    TRACER = None
    if tracer is not None:
        tracer.close()


@contextmanager
def tracing(
    target: Union[str, Any, TraceSink],
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[Tracer]:
    """Scope a process-global tracer: install on entry, close on exit."""
    tracer = install_tracer(target, meta=meta)
    try:
        yield tracer
    finally:
        if TRACER is tracer:
            uninstall_tracer()
        else:  # someone replaced it mid-scope; still release ours
            tracer.close()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Module-level span: no-op when no tracer is installed."""
    tracer = TRACER
    if tracer is None:
        yield
        return
    with tracer.span(name, **attrs):
        yield


def event(name: str, **attrs: Any) -> None:
    """Module-level event: no-op when no tracer is installed."""
    tracer = TRACER
    if tracer is not None:
        tracer.event(name, **attrs)
