"""Trace-file aggregation — the engine behind ``repro obs summarize``.

Reads a JSON-lines trace written by :class:`repro.obs.trace.Tracer`,
validates the header's schema version, and reduces the span stream into
per-name aggregates (count / total / mean / max) plus a slowest-spans view
keyed on ``point.run``.  The same helpers back the tests that assert a
traced run reproduces the ``enable_phase_timing`` split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.trace import TRACE_SCHEMA_VERSION

__all__ = [
    "SpanAggregate",
    "TraceSummary",
    "load_trace",
    "summarize_trace",
    "format_summary",
]


@dataclass(frozen=True)
class SpanAggregate:
    """All spans of one name, reduced."""

    name: str
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceSummary:
    """One trace file, reduced to aggregates."""

    header: Dict[str, Any]
    n_spans: int
    n_events: int
    #: Per-name aggregates, largest total first.
    aggregates: List[SpanAggregate]
    #: Event counts by name.
    events: Dict[str, int]
    #: ``point.run`` spans sorted slowest-first (raw records, with attrs).
    slowest_points: List[Dict[str, Any]]

    def phase_seconds(self) -> Dict[str, float]:
        """Total seconds per engine phase (``phase.*`` spans)."""
        return {
            agg.name[len("phase."):]: agg.total_s
            for agg in self.aggregates
            if agg.name.startswith("phase.")
        }

    def by_name(self, name: str) -> Optional[SpanAggregate]:
        for agg in self.aggregates:
            if agg.name == name:
                return agg
        return None


def load_trace(
    path: Union[str, Any]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a trace file into ``(header, records)``.

    Raises ``ValueError`` for a missing/misplaced header, an unsupported
    schema version, or a corrupt line — a trace is a single-writer artifact,
    so unlike the result store there is no salvage path.
    """
    header: Optional[Dict[str, Any]] = None
    records: List[Dict[str, Any]] = []
    with open(str(path), "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt trace line: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{lineno}: trace records must be objects"
                )
            if header is None:
                if record.get("record") != "header":
                    raise ValueError(
                        f"{path}: first record must be a header, "
                        f"got {record.get('record')!r}"
                    )
                version = int(record.get("schema_version", 0))
                if version > TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: trace schema v{version} is newer than "
                        f"supported v{TRACE_SCHEMA_VERSION}"
                    )
                header = record
                continue
            records.append(record)
    if header is None:
        raise ValueError(f"{path}: empty trace (no header record)")
    return header, records


def summarize_trace(
    path: Union[str, Any], slowest: int = 5
) -> TraceSummary:
    """Reduce one trace file into a :class:`TraceSummary`."""
    header, records = load_trace(path)
    totals: Dict[str, Tuple[int, float, float]] = {}
    events: Dict[str, int] = {}
    points: List[Dict[str, Any]] = []
    n_spans = 0
    n_events = 0
    for record in records:
        kind = record.get("record")
        name = str(record.get("name", ""))
        if kind == "span":
            n_spans += 1
            duration = float(record.get("duration_s", 0.0))
            count, total, peak = totals.get(name, (0, 0.0, 0.0))
            totals[name] = (count + 1, total + duration, max(peak, duration))
            if name == "point.run":
                points.append(record)
        elif kind == "event":
            n_events += 1
            events[name] = events.get(name, 0) + 1
    aggregates = sorted(
        (
            SpanAggregate(name=name, count=count, total_s=total, max_s=peak)
            for name, (count, total, peak) in totals.items()
        ),
        key=lambda agg: -agg.total_s,
    )
    points.sort(key=lambda rec: -float(rec.get("duration_s", 0.0)))
    return TraceSummary(
        header=header,
        n_spans=n_spans,
        n_events=n_events,
        aggregates=aggregates,
        events=events,
        slowest_points=points[:slowest],
    )


def format_summary(summary: TraceSummary, top: int = 12) -> str:
    """Render a summary as the fixed-width table the CLI prints."""
    lines: List[str] = []
    header = summary.header
    lines.append(
        f"trace schema v{header.get('schema_version')} · "
        f"{summary.n_spans} spans · {summary.n_events} events"
    )
    accel = header.get("accel")
    if accel:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(accel.items()))
        lines.append(f"accel: {pairs}")
    lines.append("")
    lines.append(
        f"{'span':<28} {'count':>8} {'total_s':>10} {'mean_ms':>9} {'max_ms':>9}"
    )
    for agg in summary.aggregates[:top]:
        lines.append(
            f"{agg.name:<28} {agg.count:>8} {agg.total_s:>10.4f} "
            f"{agg.mean_s * 1e3:>9.3f} {agg.max_s * 1e3:>9.3f}"
        )
    if len(summary.aggregates) > top:
        lines.append(f"... {len(summary.aggregates) - top} more span names")
    if summary.events:
        lines.append("")
        lines.append(f"{'event':<28} {'count':>8}")
        for name in sorted(summary.events):
            lines.append(f"{name:<28} {summary.events[name]:>8}")
    if summary.slowest_points:
        lines.append("")
        lines.append("slowest points (point.run):")
        for record in summary.slowest_points:
            attrs = record.get("attrs", {})
            label = ", ".join(
                f"{key}={attrs[key]}" for key in sorted(attrs)
            ) or "-"
            lines.append(
                f"  {float(record.get('duration_s', 0.0)) * 1e3:>9.3f} ms  {label}"
            )
    return "\n".join(lines)
