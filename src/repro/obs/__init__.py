"""repro.obs — unified tracing, metrics and run-telemetry.

One observability substrate for the whole stack:

``repro.obs.clock``
    The single sanctioned monotonic-clock seam.  Everything in the tree
    that needs a timestamp routes through :func:`clock.now` /
    :func:`clock.cpu_now`; the lint suite (KRN002) flags raw
    ``time.perf_counter`` / ``time.monotonic`` calls anywhere else.
``repro.obs.metrics``
    Process-global counters / gauges / histograms with a no-op default:
    hot paths pay one attribute check (``METRICS.enabled``) when nothing
    is recording.
``repro.obs.trace``
    Span/trace API with parent/child nesting and a versioned JSON-lines
    sink, plus :class:`PhaseRecorder`, the drop-in phase clock the engine
    and :class:`~repro.sim.macro.MacroRunner` time their five phases with.
``repro.obs.dispatch``
    Kernel-entry dispatch counting via the ``@kernel`` registry — the
    replacement for the old ``sys.setprofile`` hook.
``repro.obs.report``
    :class:`RunReport` / :class:`RunTelemetry`: structured per-point run
    telemetry threaded through the executors and persisted as a
    :class:`~repro.store.store.ResultStore` artifact.
``repro.obs.summary``
    Trace-file aggregation behind ``python -m repro obs summarize``.

The package is import-light (stdlib only) so instrumented hot paths and
the lint/CI tooling can depend on it without dragging in numpy.
"""

from __future__ import annotations

from repro.obs import clock, metrics, report, summary, trace
from repro.obs.metrics import MetricsRegistry, recording
from repro.obs.report import (
    RUN_REPORT_SCHEMA_VERSION,
    PointReport,
    RunReport,
    RunTelemetry,
)
from repro.obs.summary import TraceSummary, summarize_trace
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    JsonLinesTraceSink,
    ListTraceSink,
    PhaseRecorder,
    Tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "clock",
    "metrics",
    "report",
    "summary",
    "trace",
    "MetricsRegistry",
    "recording",
    "RUN_REPORT_SCHEMA_VERSION",
    "PointReport",
    "RunReport",
    "RunTelemetry",
    "TraceSummary",
    "summarize_trace",
    "TRACE_SCHEMA_VERSION",
    "JsonLinesTraceSink",
    "ListTraceSink",
    "PhaseRecorder",
    "Tracer",
    "install_tracer",
    "span",
    "tracing",
    "uninstall_tracer",
]
