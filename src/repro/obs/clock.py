"""The single sanctioned timing seam.

Every monotonic/CPU timestamp in the tree is read here and nowhere else:
the lint suite's KRN002 rule flags ``time.perf_counter`` / ``time.monotonic``
/ ``time.process_time`` calls anywhere outside this module (and forbids them
outright inside ``@kernel`` bodies), so "where does this duration come from"
always has exactly one answer.  The suppressions below are the reasoned
``lint: allow`` entries KRN002's docstring points at.

Keeping the seam one function deep also keeps it patchable: tests that need
deterministic durations monkeypatch ``repro.obs.clock.now`` once and every
span, phase split and telemetry wall time in the process follows.
"""

from __future__ import annotations

import time

__all__ = ["now", "now_ns", "cpu_now"]


def now() -> float:
    """Monotonic wall-clock seconds (the span/trace time base)."""
    # The one sanctioned perf_counter read.  lint: allow[KRN002]
    return time.perf_counter()


def now_ns() -> int:
    """Integer-nanosecond twin of :func:`now` for allocation-free deltas."""
    # The one sanctioned perf_counter_ns read.  lint: allow[KRN002]
    return time.perf_counter_ns()


def cpu_now() -> float:
    """Process CPU seconds — the benchmark-grade time base.

    Excludes sleep/IO, matching what ``BENCH_engine.json`` records and what
    ``python -m repro profile`` reports as fps.
    """
    # The one sanctioned process_time read.  lint: allow[KRN002]
    return time.process_time()
