"""Kernel-entry dispatch counting via the ``@kernel`` registry.

Replaces the engine's old ``sys.setprofile`` hook, which taxed *every*
Python call in the interpreter while counting and guessed at "dispatches"
by sniffing NumPy frames.  The new counter has a precise definition — one
dispatch = one entry into a ``batch=True`` ``@kernel`` function (see
:mod:`repro.lint.contracts`) — and costs nothing when off: kernels are
plain unwrapped functions until :meth:`KernelDispatchCounter.install`
swaps counting wrappers into every live binding, and
:meth:`~KernelDispatchCounter.uninstall` restores the originals.

Bindings are discovered by identity: the defining class (for methods) and
every ``repro*`` module whose globals alias the function — which covers
``from repro.accel import contention_round_scan``-style imports the macro
runner relies on.  Scalar per-terminal kernels (``batch=False``) are never
patched, preserving the macro-vs-per-frame dispatch invariant that
``BENCH_engine.json`` records.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.lint.contracts import KernelInfo, registered_kernels
from repro.obs import metrics as _metrics

__all__ = ["KernelDispatchCounter"]


def _binding_sites(info: KernelInfo) -> Iterator[Tuple[Any, str]]:
    """Yield ``(owner, attribute)`` pairs whose value *is* ``info.func``."""
    func = info.func
    attr = info.qualname.rsplit(".", 1)[-1]
    # Methods: walk the qualname on the defining module to reach the class.
    if "." in info.qualname and "<locals>" not in info.qualname:
        owner: Any = sys.modules.get(info.module)
        for part in info.qualname.split(".")[:-1]:
            owner = getattr(owner, part, None)
            if owner is None:
                break
        if owner is not None and owner.__dict__.get(attr) is func:
            yield owner, attr
    # Module-global bindings, including import aliases anywhere under repro.
    for name, module in list(sys.modules.items()):
        if module is None or not name.startswith("repro"):
            continue
        for alias, value in list(vars(module).items()):
            if value is func:
                yield module, alias


class KernelDispatchCounter:
    """Count entries into batch kernels, attributed to engine phases.

    Parameters
    ----------
    counts:
        Mutable ``{phase: entries}`` dict, incremented in place (the
        engine exposes it as ``dispatch_counts``).
    phase_of:
        Zero-argument callable naming the phase currently open (typically
        ``lambda: recorder.phase``); entries outside any phase bracket
        (falsy name) are attributed to nothing and only feed the
        ``kernel.dispatches`` metric.
    """

    def __init__(
        self, counts: Dict[str, int], phase_of: Callable[[], str]
    ) -> None:
        self.counts = counts
        self._phase_of = phase_of
        #: Total batch-kernel entries since install (all phases).
        self.total = 0
        self._patched: List[Tuple[Any, str, Any]] = []

    @property
    def installed(self) -> bool:
        return bool(self._patched)

    def install(self) -> None:
        """Swap counting wrappers into every live batch-kernel binding."""
        if self._patched:
            return
        for info in registered_kernels():
            if not info.batch:
                continue
            wrapper = self._wrap(info.func)
            for owner, attr in _binding_sites(info):
                self._patched.append((owner, attr, info.func))
                setattr(owner, attr, wrapper)

    def uninstall(self) -> None:
        """Restore every patched binding to the original function."""
        while self._patched:
            owner, attr, original = self._patched.pop()
            setattr(owner, attr, original)

    def _wrap(self, func: Callable[..., Any]) -> Callable[..., Any]:
        counts = self.counts
        phase_of = self._phase_of

        def counting(*args: Any, **kwargs: Any) -> Any:
            phase = phase_of()
            if phase:
                counts[phase] = counts.get(phase, 0) + 1
            self.total += 1
            m = _metrics.METRICS
            if m.enabled:
                m.inc("kernel.dispatches")
            return func(*args, **kwargs)

        counting.__wrapped__ = func  # type: ignore[attr-defined]
        counting.__name__ = getattr(func, "__name__", "kernel")
        counting.__qualname__ = getattr(func, "__qualname__", "kernel")
        return counting

    def __repr__(self) -> str:
        return (
            f"KernelDispatchCounter(installed={self.installed}, "
            f"total={self.total})"
        )
