"""Structured run telemetry: per-point cost, cache status, worker id.

:class:`RunTelemetry` is the mutable collector the executors thread point
records into while a grid runs; :meth:`RunTelemetry.report` freezes it into
a :class:`RunReport`, the JSON-ready payload :func:`repro.api.run` persists
as a :class:`~repro.store.store.ResultStore` artifact.  The ROADMAP's fleet
executor reuses :class:`RunReport` as its worker heartbeat payload, so the
shape is versioned just like the trace schema.

The collector is deliberately decoupled from :class:`~repro.api.spec`:
executors pass plain values (``run_hash``, ``protocol``, ``coords``), so
this module stays stdlib-only and inside the mypy --strict perimeter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import clock as _clock
from repro.obs import metrics as _metrics

__all__ = [
    "RUN_REPORT_SCHEMA_VERSION",
    "PointReport",
    "RunReport",
    "RunTelemetry",
]

#: Bump on any backwards-incompatible change to the payload shapes.
RUN_REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PointReport:
    """Telemetry of one grid point."""

    #: Position in the expanded run list (sink-callback position).
    position: int
    #: The point's cache key (``RunPoint.run_hash()``).
    run_hash: str
    protocol: str
    #: Sweep coordinates (``RunPoint.coords_dict()``).
    coords: Dict[str, Any]
    #: Wall seconds for this point; ``None`` for cache hits served without
    #: measurement and for legacy paths that bypass instrumentation.
    wall_s: Optional[float] = None
    #: "computed" (no cache in play), "hit" or "miss".
    cache: str = "computed"
    #: Opaque worker label (``"pid:1234"``, ``"async:2"``) or ``None``
    #: when the point ran in the driving process.
    worker: Optional[str] = None
    #: Frames simulated (warmup + measured), when known.
    frames: Optional[int] = None
    #: Per-phase second split, present when phase_split was requested.
    phase_seconds: Optional[Dict[str, float]] = None

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "position": self.position,
            "run_hash": self.run_hash,
            "protocol": self.protocol,
            "coords": dict(self.coords),
            "cache": self.cache,
        }
        if self.wall_s is not None:
            payload["wall_s"] = self.wall_s
        if self.worker is not None:
            payload["worker"] = self.worker
        if self.frames is not None:
            payload["frames"] = self.frames
        if self.phase_seconds is not None:
            payload["phase_seconds"] = dict(self.phase_seconds)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PointReport":
        return cls(
            position=int(payload["position"]),
            run_hash=str(payload["run_hash"]),
            protocol=str(payload["protocol"]),
            coords=dict(payload.get("coords", {})),
            wall_s=payload.get("wall_s"),
            cache=str(payload.get("cache", "computed")),
            worker=payload.get("worker"),
            frames=payload.get("frames"),
            phase_seconds=payload.get("phase_seconds"),
        )


@dataclass(frozen=True)
class RunReport:
    """Frozen telemetry of one grid execution (JSON round-trippable)."""

    spec_name: str
    spec_hash: str
    n_points: int
    #: End-to-end wall seconds of the execute call (``None`` if the
    #: collector was never started).
    wall_s: Optional[float]
    points: List[PointReport]
    #: Snapshot of the process-global metrics registry at report time
    #: (empty when the no-op registry is installed).
    metrics: Dict[str, Any]
    schema_version: int = RUN_REPORT_SCHEMA_VERSION

    # ------------------------------------------------------------- analysis
    def slowest(self, n: int = 5) -> List[PointReport]:
        """The ``n`` points with the largest known wall time."""
        timed = [p for p in self.points if p.wall_s is not None]
        timed.sort(key=lambda p: -(p.wall_s or 0.0))
        return timed[:n]

    def phase_totals(self) -> Dict[str, float]:
        """Per-phase seconds summed over every point that carried a split."""
        totals: Dict[str, float] = {}
        for point in self.points:
            if point.phase_seconds:
                for phase, seconds in point.phase_seconds.items():
                    totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def cache_counts(self) -> Dict[str, int]:
        """How many points were hits / misses / plain computes."""
        counts: Dict[str, int] = {}
        for point in self.points:
            counts[point.cache] = counts.get(point.cache, 0) + 1
        return counts

    # ---------------------------------------------------------- persistence
    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "spec_name": self.spec_name,
            "spec_hash": self.spec_hash,
            "n_points": self.n_points,
            "wall_s": self.wall_s,
            "points": [point.to_payload() for point in self.points],
            "metrics": self.metrics,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RunReport":
        version = int(payload.get("schema_version", 0))
        if version > RUN_REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"run report schema v{version} is newer than supported "
                f"v{RUN_REPORT_SCHEMA_VERSION}"
            )
        return cls(
            spec_name=str(payload.get("spec_name", "")),
            spec_hash=str(payload.get("spec_hash", "")),
            n_points=int(payload.get("n_points", 0)),
            wall_s=payload.get("wall_s"),
            points=[
                PointReport.from_payload(entry)
                for entry in payload.get("points", [])
            ],
            metrics=dict(payload.get("metrics", {})),
            schema_version=version or RUN_REPORT_SCHEMA_VERSION,
        )


class RunTelemetry:
    """Mutable per-run collector the executors record points into.

    Thread-safe (async workers and sink callbacks interleave).  Layered
    executors use :meth:`child` + :meth:`absorb`: the caching executor
    hands its inner executor a child collector over the *miss* sub-list,
    then remaps the child's sub-positions back onto grid positions.
    """

    def __init__(self, phase_split: bool = False) -> None:
        #: Ask executors to run points under ``enable_phase_timing`` and
        #: attach the per-phase split to each record.
        self.phase_split = phase_split
        self._lock = threading.Lock()
        self._points: Dict[int, PointReport] = {}
        self._t0: Optional[float] = None

    def start(self) -> None:
        """Mark the beginning of the execute call (for run wall time)."""
        self._t0 = _clock.now()

    def record_point(
        self,
        position: int,
        *,
        run_hash: str,
        protocol: str,
        coords: Dict[str, Any],
        wall_s: Optional[float] = None,
        cache: str = "computed",
        worker: Optional[str] = None,
        frames: Optional[int] = None,
        phase_seconds: Optional[Dict[str, float]] = None,
    ) -> None:
        report = PointReport(
            position=position,
            run_hash=run_hash,
            protocol=protocol,
            coords=coords,
            wall_s=wall_s,
            cache=cache,
            worker=worker,
            frames=frames,
            phase_seconds=phase_seconds,
        )
        with self._lock:
            self._points[position] = report

    # ------------------------------------------------------------- layering
    def child(self) -> "RunTelemetry":
        """A fresh collector for an inner executor over a sub-list."""
        return RunTelemetry(phase_split=self.phase_split)

    def absorb(
        self,
        child: "RunTelemetry",
        positions: Sequence[int],
        cache: Optional[str] = None,
    ) -> None:
        """Fold a child's records in, remapping sub-position ``i`` to
        ``positions[i]`` and optionally re-labelling the cache status."""
        with child._lock:
            records = list(child._points.values())
        with self._lock:
            for record in records:
                position = positions[record.position]
                record = replace(record, position=position)
                if cache is not None:
                    record = replace(record, cache=cache)
                self._points[position] = record

    # -------------------------------------------------------------- freeze
    def report(
        self, spec_name: str, spec_hash: str, n_points: int
    ) -> RunReport:
        """Freeze into a :class:`RunReport` (metric snapshot included)."""
        wall_s = _clock.now() - self._t0 if self._t0 is not None else None
        registry = _metrics.METRICS
        metrics = registry.snapshot() if registry.enabled else {}
        with self._lock:
            points = [self._points[key] for key in sorted(self._points)]
        return RunReport(
            spec_name=spec_name,
            spec_hash=spec_hash,
            n_points=n_points,
            wall_s=wall_s,
            points=points,
            metrics=metrics,
        )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RunTelemetry(points={len(self._points)}, "
                f"phase_split={self.phase_split})"
            )
