"""Process-global metrics registry with a no-op default.

Hot paths (kernel entries, cache lookups, contention rounds) follow one
pattern::

    from repro.obs import metrics as _metrics
    ...
    m = _metrics.METRICS
    if m.enabled:
        m.inc("store.cache_hit")

Reading ``METRICS`` through the module attribute (never ``from ... import
METRICS``) is what makes :func:`install` / :func:`recording` take effect at
call sites; the ``enabled`` check is the *entire* disabled-mode cost — one
attribute load and a branch, no dict touch, no allocation.  That budget is
enforced by the opt-in overhead benchmark in ``tests/obs``.

Metric names are dotted strings (``macro.fallback_frames``,
``scheduler.steals``, ...); the registry is intentionally schema-free —
whatever name a subsystem increments simply appears in :meth:`snapshot`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Union

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "NULL",
    "install",
    "uninstall",
    "recording",
]

Number = Union[int, float]


class Histogram:
    """Streaming summary of observed values: count / sum / min / max.

    Deliberately bucket-free: the consumers (run telemetry snapshots,
    ``obs summarize``) want tail spotting, not distribution plots, and a
    four-field summary keeps :meth:`MetricsRegistry.observe` allocation-free
    after the first observation.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: Number) -> None:
        value = float(value)
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.total:g})"


class MetricsRegistry:
    """Counters, gauges and histograms keyed by dotted metric names.

    Thread-safe for concurrent increments (the async executor's worker
    coroutines and inner-executor callbacks may interleave); the lock is
    only ever taken when a registry is actually recording, so the disabled
    default costs nothing.
    """

    #: Hot paths gate on this before touching any other attribute.
    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ---------------------------------------------------------------- write
    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Feed one observation into the histogram ``name``."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    # ----------------------------------------------------------------- read
    def counter(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy of everything recorded, JSON-ready."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Drop every recorded value (the registry stays installed)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"{type(self).__name__}(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


class _NullMetricsRegistry(MetricsRegistry):
    """The process-global default: records nothing, costs nothing.

    Every write is overridden to a bare ``pass`` so even un-gated call
    sites (cold paths that skip the ``enabled`` check) stay no-ops.
    """

    enabled = False

    def inc(self, name: str, value: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass


#: The shared no-op instance (``METRICS`` points here unless recording).
NULL: MetricsRegistry = _NullMetricsRegistry()

#: Process-global registry.  Read via the module attribute at call sites.
METRICS: MetricsRegistry = NULL


def install(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Make ``registry`` (a fresh one by default) the process-global target."""
    global METRICS
    if registry is None:
        registry = MetricsRegistry()
    METRICS = registry
    return registry


def uninstall() -> None:
    """Restore the no-op default."""
    global METRICS
    METRICS = NULL


@contextmanager
def recording(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Scope a recording registry: install on entry, restore on exit."""
    global METRICS
    previous = METRICS
    active = install(registry)
    try:
        yield active
    finally:
        METRICS = previous
