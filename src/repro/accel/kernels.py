"""Compiled scalar kernels with bit-identical pure-NumPy fallbacks.

Every kernel here is written twice: a NumPy implementation that is always
available, and (when :mod:`numba` imports) a JIT-compiled twin registered
under the same name.  Both produce identical outputs for identical inputs —
the macro engine's parity guarantees must not depend on whether numba is
installed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.lint.contracts import kernel

__all__ = [
    "HAS_NUMBA",
    "contention_round_scan",
    "deadline_scan",
    "kernel_provenance",
    "next_expiry_bound",
    "voice_flush_resolve",
    "voice_generation_offsets",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    numba = None
    HAS_NUMBA = False


def kernel_provenance() -> Dict[str, str]:
    """Which implementation each accel kernel resolved to at import time.

    ``{"contention_round_scan": "numba" | "numpy", ...}`` — the CLI stamps
    this into trace headers so a trace file records which twin produced
    its timings (the selection happens once, at import).
    """
    source = "numba" if HAS_NUMBA else "numpy"
    return {
        name: source
        for name in (
            "contention_round_scan",
            "deadline_scan",
            "next_expiry_bound",
            "voice_flush_resolve",
            "voice_generation_offsets",
        )
    }


@kernel
def contention_round_scan(
    draws: np.ndarray, probabilities: np.ndarray
) -> Tuple[np.ndarray, int, int]:
    """Scan one contention round for the first successful minislot.

    Parameters
    ----------
    draws:
        Uniform draws, shape ``(rows, k)`` — row ``r`` holds minislot ``r``'s
        per-candidate permission draws.
    probabilities:
        Per-candidate permission probabilities, shape ``(k,)``.

    Returns
    -------
    (counts, first_single_row, winner_column)
        ``counts[r]`` is the number of transmitters in minislot ``r``;
        ``first_single_row`` is the first row with exactly one transmitter
        (``-1`` if none) and ``winner_column`` that transmitter's column
        (``-1`` if none).  Rows after ``first_single_row`` use stale
        candidate pools, so callers must only consume ``counts`` up to and
        including that row; the compiled kernel stops computing there and
        leaves later entries at zero.
    """
    hits = draws < probabilities
    counts = hits.sum(axis=1, dtype=np.int64)
    singles = np.nonzero(counts == 1)[0]
    if singles.shape[0] == 0:
        return counts, -1, -1
    row = int(singles[0])
    return counts, row, int(np.argmax(hits[row]))


@kernel
def voice_generation_offsets(
    since: np.ndarray, period: int, gap: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Frame offsets at which talking terminals generate during a quiet gap.

    A terminal whose talkspurt counter reads ``since`` frames generates a
    voice packet at every offset ``o`` in ``[0, gap)`` with
    ``(since + o) % period == 0``.  Returns ``(offsets, rows)`` — parallel
    arrays naming, in offset-major order per row, each generation event of
    the gap (``rows`` indexes into ``since``).
    """
    firsts = (-since) % period
    counts = np.maximum(0, (gap - firsts + period - 1) // period)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    rows = np.repeat(np.arange(since.shape[0], dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    intra = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    offsets = np.repeat(firsts, counts) + period * intra
    return offsets, rows


@kernel
def voice_flush_resolve(
    terminal_ids: np.ndarray,
    counts: np.ndarray,
    pre_window: np.ndarray,
    delivered: np.ndarray,
    size: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resolve a whole flush batch of deferred voice outcomes in one step.

    The batched form of ``record_voice_outcome``'s arithmetic over every
    deferred voice row of a macro flush — per-row delivered/errored
    resolution fused with the per-terminal scatter-accumulation (a terminal
    appearing in several frames of the block contributes every row).

    Parameters
    ----------
    terminal_ids, counts, pre_window, delivered:
        Parallel rows: the transmitting terminal, how many packets it
        popped, how many of those predate the measurement window (always a
        FIFO prefix) and how many the PHY draw delivered.
    size:
        Length of the per-terminal accumulator arrays to produce (the
        population size; ``terminal_ids`` must all lie below it).

    Returns
    -------
    (delivered_totals, errored_totals, errored_rows, errored)
        Per-terminal in-window delivered and errored packet totals
        (length ``size``), the row positions with a non-zero error count,
        and the per-row errored counts (for per-frame record attribution).
    """
    floor = np.maximum(delivered, pre_window)
    errored = counts - floor
    net = np.maximum(delivered - pre_window, 0)
    # Weighted bincount is the scatter-accumulate: float64 weights are
    # exact for packet counts, so the cast back to int64 is lossless.
    delivered_totals = np.bincount(
        terminal_ids, weights=net, minlength=size
    ).astype(np.int64)
    errored_totals = np.bincount(
        terminal_ids, weights=errored, minlength=size
    ).astype(np.int64)
    return delivered_totals, errored_totals, np.nonzero(errored)[0], errored


@kernel
def deadline_scan(heads: np.ndarray, limit: int) -> np.ndarray:
    """Rows whose head-of-line frame stamp is alive and at most ``limit``.

    The deadline fast-skip of the expiry sweep: ``heads`` holds each voice
    terminal's oldest buffered packet's creation frame (``-1`` when empty),
    and a head at or before ``limit`` has outlived its deadline.  Returns
    the expired row indices (ascending).
    """
    return np.nonzero((heads >= 0) & (heads <= limit))[0]


@kernel
def next_expiry_bound(heads: np.ndarray, deadline: int, sentinel: int) -> int:
    """Earliest frame at which any buffered head-of-line packet can expire.

    ``min(alive heads) + deadline``, or ``sentinel`` when every buffer is
    empty — the conservative lower bound the expiry sweep consults to skip
    frames without touching any per-terminal state.
    """
    alive = heads >= 0
    if not alive.any():
        return sentinel
    return int(heads[alive].min()) + deadline


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _contention_round_scan_jit(
        draws: np.ndarray, probabilities: np.ndarray
    ) -> Tuple[np.ndarray, int, int]:
        rows, k = draws.shape
        counts = np.zeros(rows, dtype=np.int64)
        for r in range(rows):
            n = 0
            col = -1
            for c in range(k):
                if draws[r, c] < probabilities[c]:
                    n += 1
                    col = c
            counts[r] = n
            if n == 1:
                return counts, r, col
        return counts, -1, -1

    @numba.njit(cache=True)
    def _voice_generation_offsets_jit(
        since: np.ndarray, period: int, gap: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = since.shape[0]
        total = 0
        for i in range(n):
            first = (-since[i]) % period
            if first < gap:
                total += (gap - first + period - 1) // period
        offsets = np.empty(total, dtype=np.int64)
        rows = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(n):
            o = (-since[i]) % period
            while o < gap:
                offsets[pos] = o
                rows[pos] = i
                pos += 1
                o += period
        return offsets, rows

    @numba.njit(cache=True)
    def _voice_flush_resolve_jit(
        terminal_ids: np.ndarray,
        counts: np.ndarray,
        pre_window: np.ndarray,
        delivered: np.ndarray,
        size: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = terminal_ids.shape[0]
        delivered_totals = np.zeros(size, dtype=np.int64)
        errored_totals = np.zeros(size, dtype=np.int64)
        errored = np.empty(n, dtype=np.int64)
        n_errored = 0
        for j in range(n):
            pre = pre_window[j]
            got = delivered[j]
            floor = got if got > pre else pre
            err = counts[j] - floor
            errored[j] = err
            tid = terminal_ids[j]
            if got > pre:
                delivered_totals[tid] += got - pre
            if err:
                errored_totals[tid] += err
                n_errored += 1
        errored_rows = np.empty(n_errored, dtype=np.int64)
        pos = 0
        for j in range(n):
            if errored[j]:
                errored_rows[pos] = j
                pos += 1
        return delivered_totals, errored_totals, errored_rows, errored

    @numba.njit(cache=True)
    def _deadline_scan_jit(heads: np.ndarray, limit: int) -> np.ndarray:
        n = heads.shape[0]
        total = 0
        for i in range(n):
            if heads[i] >= 0 and heads[i] <= limit:
                total += 1
        rows = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(n):
            if heads[i] >= 0 and heads[i] <= limit:
                rows[pos] = i
                pos += 1
        return rows

    @numba.njit(cache=True)
    def _next_expiry_bound_jit(
        heads: np.ndarray, deadline: int, sentinel: int
    ) -> int:
        best = sentinel
        for i in range(heads.shape[0]):
            head = heads[i]
            if head >= 0 and head + deadline < best:
                best = head + deadline
        return best

    @kernel
    def contention_round_scan(  # noqa: F811
        draws: np.ndarray, probabilities: np.ndarray
    ) -> Tuple[np.ndarray, int, int]:
        return _contention_round_scan_jit(
            np.ascontiguousarray(draws), np.ascontiguousarray(probabilities)
        )

    @kernel
    def voice_generation_offsets(  # noqa: F811
        since: np.ndarray, period: int, gap: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _voice_generation_offsets_jit(
            np.ascontiguousarray(since), period, gap
        )

    @kernel
    def voice_flush_resolve(  # noqa: F811
        terminal_ids: np.ndarray,
        counts: np.ndarray,
        pre_window: np.ndarray,
        delivered: np.ndarray,
        size: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return _voice_flush_resolve_jit(
            np.ascontiguousarray(terminal_ids),
            np.ascontiguousarray(counts),
            np.ascontiguousarray(pre_window),
            np.ascontiguousarray(delivered),
            size,
        )

    @kernel
    def deadline_scan(  # noqa: F811
        heads: np.ndarray, limit: int
    ) -> np.ndarray:
        return _deadline_scan_jit(np.ascontiguousarray(heads), limit)

    @kernel
    def next_expiry_bound(  # noqa: F811
        heads: np.ndarray, deadline: int, sentinel: int
    ) -> int:
        return int(
            _next_expiry_bound_jit(np.ascontiguousarray(heads), deadline, sentinel)
        )
