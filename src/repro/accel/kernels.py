"""Compiled scalar kernels with bit-identical pure-NumPy fallbacks.

Every kernel here is written twice: a NumPy implementation that is always
available, and (when :mod:`numba` imports) a JIT-compiled twin registered
under the same name.  Both produce identical outputs for identical inputs —
the macro engine's parity guarantees must not depend on whether numba is
installed.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.lint.contracts import kernel

__all__ = [
    "HAS_NUMBA",
    "contention_round_scan",
    "kernel_provenance",
    "voice_generation_offsets",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the container default
    numba = None
    HAS_NUMBA = False


def kernel_provenance() -> Dict[str, str]:
    """Which implementation each accel kernel resolved to at import time.

    ``{"contention_round_scan": "numba" | "numpy", ...}`` — the CLI stamps
    this into trace headers so a trace file records which twin produced
    its timings (the selection happens once, at import).
    """
    source = "numba" if HAS_NUMBA else "numpy"
    return {
        name: source
        for name in ("contention_round_scan", "voice_generation_offsets")
    }


@kernel
def contention_round_scan(
    draws: np.ndarray, probabilities: np.ndarray
) -> Tuple[np.ndarray, int, int]:
    """Scan one contention round for the first successful minislot.

    Parameters
    ----------
    draws:
        Uniform draws, shape ``(rows, k)`` — row ``r`` holds minislot ``r``'s
        per-candidate permission draws.
    probabilities:
        Per-candidate permission probabilities, shape ``(k,)``.

    Returns
    -------
    (counts, first_single_row, winner_column)
        ``counts[r]`` is the number of transmitters in minislot ``r``;
        ``first_single_row`` is the first row with exactly one transmitter
        (``-1`` if none) and ``winner_column`` that transmitter's column
        (``-1`` if none).  Rows after ``first_single_row`` use stale
        candidate pools, so callers must only consume ``counts`` up to and
        including that row; the compiled kernel stops computing there and
        leaves later entries at zero.
    """
    hits = draws < probabilities
    counts = hits.sum(axis=1, dtype=np.int64)
    singles = np.nonzero(counts == 1)[0]
    if singles.shape[0] == 0:
        return counts, -1, -1
    row = int(singles[0])
    return counts, row, int(np.argmax(hits[row]))


@kernel
def voice_generation_offsets(
    since: np.ndarray, period: int, gap: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Frame offsets at which talking terminals generate during a quiet gap.

    A terminal whose talkspurt counter reads ``since`` frames generates a
    voice packet at every offset ``o`` in ``[0, gap)`` with
    ``(since + o) % period == 0``.  Returns ``(offsets, rows)`` — parallel
    arrays naming, in offset-major order per row, each generation event of
    the gap (``rows`` indexes into ``since``).
    """
    firsts = (-since) % period
    counts = np.maximum(0, (gap - firsts + period - 1) // period)
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    rows = np.repeat(np.arange(since.shape[0], dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    intra = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    offsets = np.repeat(firsts, counts) + period * intra
    return offsets, rows


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _contention_round_scan_jit(draws, probabilities):
        rows, k = draws.shape
        counts = np.zeros(rows, dtype=np.int64)
        for r in range(rows):
            n = 0
            col = -1
            for c in range(k):
                if draws[r, c] < probabilities[c]:
                    n += 1
                    col = c
            counts[r] = n
            if n == 1:
                return counts, r, col
        return counts, -1, -1

    @numba.njit(cache=True)
    def _voice_generation_offsets_jit(since, period, gap):
        n = since.shape[0]
        total = 0
        for i in range(n):
            first = (-since[i]) % period
            if first < gap:
                total += (gap - first + period - 1) // period
        offsets = np.empty(total, dtype=np.int64)
        rows = np.empty(total, dtype=np.int64)
        pos = 0
        for i in range(n):
            o = (-since[i]) % period
            while o < gap:
                offsets[pos] = o
                rows[pos] = i
                pos += 1
                o += period
        return offsets, rows

    @kernel
    def contention_round_scan(draws, probabilities):  # noqa: F811
        return _contention_round_scan_jit(
            np.ascontiguousarray(draws), np.ascontiguousarray(probabilities)
        )

    @kernel
    def voice_generation_offsets(since, period, gap):  # noqa: F811
        return _voice_generation_offsets_jit(
            np.ascontiguousarray(since), period, gap
        )
