"""Optional compiled-kernel seam (feature-detected numba, numpy fallback).

The macro-stepped frame loop reduces the engine to a handful of large array
kernels per block plus a few irreducible scalar recursions — per-minislot
contention resolution is the archetype: each minislot's outcome depends on
the previous winners, so it cannot be expressed as one array expression.
``repro.accel`` is the seam those recursions compile through:

* when :mod:`numba` is importable, hot scalar kernels are JIT-compiled once
  per process (:data:`HAS_NUMBA` is ``True``);
* otherwise every kernel falls back to a pure-NumPy implementation with
  **identical results** — numba is an accelerator, never a dependency.

Nothing outside this package may import numba directly; gate new compiled
kernels behind the same pattern (define the fallback first, overwrite with
the jitted twin inside the ``if HAS_NUMBA`` block).  The CI matrix includes
a job without numba installed, proving the fallback path imports and passes
the parity suite.
"""

from __future__ import annotations

from repro.accel.kernels import (
    HAS_NUMBA,
    contention_round_scan,
    deadline_scan,
    kernel_provenance,
    next_expiry_bound,
    voice_flush_resolve,
    voice_generation_offsets,
)

__all__ = [
    "HAS_NUMBA",
    "contention_round_scan",
    "deadline_scan",
    "kernel_provenance",
    "next_expiry_bound",
    "voice_flush_resolve",
    "voice_generation_offsets",
]
