"""CHARISMA: CHannel Adaptive Reservation-based ISochronous Multiple Access.

This is the paper's proposed protocol (Section 4).  It is a dynamic-TDMA
protocol whose distinctive feature is that the base station *first gathers*
all contention requests of the frame (plus the backlog and the auto-generated
requests of voice reservation holders) and only *then* assigns the
information slots — ranked by a priority metric that combines each request's
estimated CSI (through the throughput the adaptive PHY would deliver), its
deadline or waiting time, and its service class.  Users in deep fades are
deferred while their deadlines allow, so information slots are never spent on
transmissions that the channel would almost certainly destroy; users close to
their deadline are served regardless, for fairness.

Frame procedure (uplink, Fig. 4a / Section 4.3)
-----------------------------------------------
1. *Request phase*: contention in ``N_r`` minislots, gated by the permission
   probabilities; each successful request carries pilot symbols from which
   the base station estimates the sender's CSI.
2. *CSI polling*: up to ``N_b`` backlogged requests with stale estimates are
   polled and their CSI refreshed (Section 4.4).
3. *Allocation phase*: all pending requests are ranked by the priority
   metric (equation (2)) and the ``N_i`` information slots are granted by the
   CSI-ranked allocator.  Voice requests that get served acquire a
   reservation — the base station auto-generates their subsequent per-period
   requests until the talkspurt ends.
4. Requests that survived contention but obtained no slots are stored in the
   base-station request queue (with-queue variant) or discarded so the
   device contends again (without-queue variant).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.config import SimulationParameters
from repro.core.allocator import CSIRankedAllocator
from repro.core.csi_polling import CSIPoller
from repro.core.priority import PriorityCalculator
from repro.mac.base import MACProtocol, terminal_lookup, traced_batch
from repro.mac.contention import run_contention, run_contention_ids
from repro.mac.frames import FrameStructure
from repro.mac.requests import (
    Acknowledgement,
    FrameOutcome,
    Request,
    RequestColumns,
)
from repro.phy.abicm import AdaptiveModem
from repro.phy.csi import CSIEstimator
from repro.traffic.terminal import Terminal

__all__ = ["CharismaProtocol"]


class CharismaProtocol(MACProtocol):
    """The channel-adaptive, CSI-scheduled uplink access protocol."""

    name = "charisma"
    display_name = "CHARISMA"
    uses_adaptive_phy = True
    uses_csi_scheduling = True
    supports_request_queue = True
    #: Every CHARISMA frame draws CSI noise and ranks its pending pool, so
    #: the macro runner cannot use the generic holder-serve frame; when the
    #: instance supports lookahead (fast mode + dedicated CSI stream, see
    #: ``__init__``) it dispatches to the runner's inline CSI-scheduled
    #: frame with block-pooled estimation noise instead.
    macro_contention_style = "csi_schedule"

    def __init__(
        self,
        params: SimulationParameters,
        modem: AdaptiveModem,
        rng: np.random.Generator,
        use_request_queue: bool = False,
        csi_estimator: Optional[CSIEstimator] = None,
        enable_csi_polling: bool = True,
        rng_mode: str = "parity",
        contention_rng: Optional[np.random.Generator] = None,
        csi_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not modem.is_adaptive:
            raise ValueError("CHARISMA requires the adaptive physical layer")
        super().__init__(
            params,
            modem,
            rng,
            use_request_queue=use_request_queue,
            rng_mode=rng_mode,
            contention_rng=contention_rng,
        )
        # Fast mode draws estimation noise from a dedicated child stream
        # (``csi_rng``) so the macro engine can prefetch a whole block of
        # standard normals and roll unconsumed draws back without touching
        # the shared MAC stream.  Parity mode keeps the shared ``rng`` —
        # the object backend's draw order — and therefore falls back to
        # the per-frame kernel inside macro blocks (bit-identity).
        use_csi_stream = self.rng_fast and csi_rng is not None
        self.csi_estimator = csi_estimator or CSIEstimator(
            n_pilot_symbols=params.pilot_symbols_per_request,
            mean_snr_db=params.mean_snr_db,
            validity_frames=params.csi_validity_frames,
            rng=csi_rng if use_csi_stream else rng,
        )
        self.supports_macro_lookahead = bool(
            csi_estimator is None and use_csi_stream
        )
        self.priority_calculator = PriorityCalculator(params.priority, modem)
        self.allocator = CSIRankedAllocator(modem, params.n_info_slots)
        self.enable_csi_polling = bool(enable_csi_polling)
        self.csi_poller = CSIPoller(self.csi_estimator, params.n_pilot_slots)

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        return FrameStructure(
            name=self.display_name,
            request_minislots=self.params.n_request_slots,
            info_slots=self.params.n_info_slots,
            pilot_minislots=self.params.n_pilot_slots,
            dynamic=False,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)

        # ----------------------------------------------------- request phase
        candidates = self.contention_candidates(terminals)
        contention = run_contention(
            candidates, self.frame_structure.request_minislots, self.permission, self.rng
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots

        # The winners' pilot symbols are estimated with one batched noise
        # draw (stream-identical to per-winner estimation).
        winner_estimates = self.csi_estimator.estimate_many(
            [snapshot.amplitude_of(w.terminal_id) for w in contention.winners],
            frame_index,
        )
        new_requests: List[Request] = []
        for slot, (winner, csi) in enumerate(zip(contention.winners, winner_estimates)):
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, slot, frame_index)
            )
            new_requests.append(self.make_request(winner, frame_index, csi=csi))

        # Auto-generated requests of voice reservation holders: their ongoing
        # per-period transmissions double as pilots, so the base station has a
        # current estimate of their channel.
        reserved = self.reservations.reserved_terminals(terminals)
        reserved_estimates = self.csi_estimator.estimate_many(
            [snapshot.amplitude_of(t.terminal_id) for t in reserved], frame_index
        )
        reservation_requests: List[Request] = [
            self.make_request(terminal, frame_index, csi=csi, is_reservation=True)
            for terminal, csi in zip(reserved, reserved_estimates)
        ]

        # Backlog from previous frames (with-queue variant only).
        backlog: List[Request] = (
            self.request_queue.pop_all() if self.request_queue is not None else []
        )
        self._refresh_voice_deadlines(backlog, by_id, frame_index)
        if backlog and self.enable_csi_polling:
            # One batched priority evaluation for the whole backlog; the
            # poller's key then reads precomputed values instead of paying
            # the vectorised machinery per request.
            backlog_priority = dict(
                zip(
                    map(id, backlog),
                    self.priority_calculator.priorities(backlog, frame_index),
                )
            )
            self.csi_poller.refresh(
                backlog,
                snapshot,
                frame_index,
                priority_key=lambda r: backlog_priority[id(r)],
            )

        # -------------------------------------------------- allocation phase
        pending = reservation_requests + new_requests + backlog
        ranked = self.priority_calculator.rank(pending, frame_index)
        decision = self.allocator.allocate(ranked, by_id, snapshot, frame_index)
        outcome.allocations.extend(decision.allocations)

        # Newly served voice requests acquire a reservation.
        allocated_ids = {a.terminal_id for a in decision.allocations}
        for request in pending:
            if (
                request.kind.is_voice
                and not request.is_reservation
                and request.terminal_id in allocated_ids
            ):
                self.reservations.grant(request.terminal_id, frame_index)

        # Unserved / deferred requests go back to the queue (or are dropped).
        self.queue_unserved(decision.leftovers)
        outcome.queued_requests = self.queued_count()
        return outcome

    @traced_batch
    def run_frame_batch(
        self,
        frame_index: int,
        population,
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        """Array-native frame: the whole request pool lives in columns.

        Contention resolves over id arrays, CSI estimation returns amplitude
        columns, the priority metric and the mode lookup evaluate over the
        pooled :class:`RequestColumns`, and the ranked allocation walk emits
        grant columns — the only per-request Python objects left are the
        acknowledgements and any leftovers re-entering the request queue.
        """
        self.reservations.release_ended_population(population)
        self.prune_queue_batch(frame_index, population)
        outcome = FrameOutcome(frame_index)
        grants = outcome.use_grant_columns()
        validity = self.csi_estimator.validity_frames

        # ----------------------------------------------------- request phase
        ids, probabilities = self.contention_candidate_ids(population)
        contention = run_contention_ids(
            ids,
            probabilities,
            self.frame_structure.request_minislots,
            self.contention_rng,
            fast=self.rng_fast,
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots

        winner_ids = np.asarray(contention.winner_ids, dtype=np.int64)
        acknowledgements = outcome.acknowledgements
        for slot, winner in enumerate(contention.winner_ids):
            acknowledgements.append(Acknowledgement(winner, slot, frame_index))

        # CSI estimation: the winners' pilot symbols plus the auto-polled
        # reservation holders (their ongoing per-period transmissions double
        # as pilots).  Parity mode keeps the object path's two draws in
        # order; fast mode folds both groups into one batched draw.
        reserved = self.reservations.reserved_ids(population)
        amplitude = snapshot.amplitude
        if self.rng_fast:
            estimates = self.csi_estimator.estimate_amplitudes(
                amplitude[np.concatenate([reserved, winner_ids])], frame_index
            )
        else:
            winner_estimates = self.csi_estimator.estimate_amplitudes(
                amplitude[winner_ids], frame_index
            )
            reserved_estimates = self.csi_estimator.estimate_amplitudes(
                amplitude[reserved], frame_index
            )
            estimates = np.concatenate([reserved_estimates, winner_estimates])
        base_columns = self._pending_columns(
            population, reserved, winner_ids, estimates, frame_index
        )

        # Backlog from previous frames (with-queue variant only).
        backlog = (
            self.request_queue.pop_all() if self.request_queue is not None else []
        )
        if backlog:
            backlog_columns = RequestColumns.from_requests(
                backlog, csi_validity=validity
            )
            self._refresh_voice_deadline_columns(
                backlog_columns, population, frame_index
            )
            if self.enable_csi_polling:
                # The backlog priorities exist only to rank the polling
                # short list, so they are evaluated lazily: not at all when
                # no estimate is stale, and skipped for a single stale row
                # (a one-element sort is order-preserving).  Decision- and
                # draw-identical to the unconditional evaluation.
                stale = self.csi_poller.stale_rows(backlog_columns, frame_index)
                if stale.shape[0]:
                    backlog_priorities = (
                        self.priority_calculator.priorities_columns(
                            backlog_columns, frame_index
                        )
                        if stale.shape[0] > 1
                        else None
                    )
                    self.csi_poller.refresh_columns(
                        backlog_columns,
                        snapshot,
                        frame_index,
                        backlog_priorities,
                        stale=stale,
                    )
            pending = RequestColumns.concatenate(
                [base_columns, backlog_columns]
            )
        else:
            pending = base_columns

        # -------------------------------------------------- allocation phase
        # One amplitude-to-mode conversion feeds both the priority metric's
        # channel term (f(CSI), 0 when unknown) and the allocator's capacity
        # columns (packets 0 marks outage; unknown falls back to the most
        # robust mode) — the two phases share the frame's mode lookup.
        table = self.modem.mode_table
        amplitudes = pending.csi_amplitudes
        known = ~np.isnan(amplitudes)
        all_known = known.all()
        n_pending = len(pending)
        if all_known:
            indices_p1 = self.modem.mode_index(amplitudes) + 1
        else:
            # Unknown estimates sit on LUT row 1 (the most robust mode) —
            # the allocator's fallback; their priority channel term is
            # masked to 0 below.
            indices_p1 = np.ones(n_pending, dtype=np.int64)
            if known.any():
                indices_p1[known] = self.modem.mode_index(amplitudes[known]) + 1
        throughput = table.throughput_by_mode_index[indices_p1]
        per_slot = table.packets_by_mode_index[indices_p1]
        channel = throughput if all_known else np.where(known, throughput, 0.0)
        values = self.priority_calculator.priorities_columns(
            pending, frame_index, channel=channel
        )
        order = np.argsort(-values, kind="stable")
        unserved_rows, deferred_rows = self.allocator.allocate_columns(
            pending,
            order,
            population,
            frame_index,
            grants,
            per_slot=per_slot,
            throughput=throughput,
        )

        # Newly served voice requests acquire a reservation.  Only the rows
        # after the reservation-holder prefix can be "newly served", so the
        # scan skips the prefix outright.
        if grants.terminal_ids and len(pending) > reserved.shape[0]:
            allocated_ids = set(grants.terminal_ids)
            n_reserved = reserved.shape[0]
            self.reservations.grant_many(
                (
                    tid
                    for tid, voice in zip(
                        pending.terminal_ids[n_reserved:].tolist(),
                        pending.is_voice[n_reserved:].tolist(),
                    )
                    if voice and tid in allocated_ids
                ),
                frame_index,
            )

        # Unserved / deferred requests go back to the queue (or are dropped).
        self.queue_unserved_rows(pending, unserved_rows + deferred_rows)
        outcome.queued_requests = self.queued_count()
        return outcome

    def _pending_columns(
        self,
        population,
        reserved: np.ndarray,
        winner_ids: np.ndarray,
        csi_amplitudes: np.ndarray,
        frame_index: int,
    ) -> RequestColumns:
        """Fused request columns for the frame's reservations + winners.

        One pass over the concatenated id array (reservation holders first,
        matching the pending pool's priority-phase order) instead of two
        :meth:`request_columns_for` calls and a concatenate; row-for-row
        identical to building the parts separately.
        """
        terminal_ids = np.concatenate([reserved, winner_ids])
        n = terminal_ids.shape[0]
        is_voice = population.is_voice[terminal_ids]
        head = population.head_created[terminal_ids]
        deadline = np.where(
            is_voice & (head >= 0),
            frame_index
            + np.maximum(
                0, head + self.params.voice_deadline_frames - frame_index
            ),
            -1,
        )
        is_reservation = np.zeros(n, dtype=bool)
        is_reservation[: reserved.shape[0]] = True
        return RequestColumns(
            terminal_ids=terminal_ids,
            is_voice=is_voice,
            arrival_frames=np.full(n, frame_index, dtype=np.int64),
            desired_packets=np.maximum(1, population.occupancy[terminal_ids]),
            deadline_frames=deadline,
            is_reservation=is_reservation,
            csi_amplitudes=csi_amplitudes,
            csi_frames=np.full(n, frame_index, dtype=np.int64),
            csi_validity=self.csi_estimator.validity_frames,
        )

    def _refresh_voice_deadline_columns(
        self, columns: RequestColumns, population, frame_index: int
    ) -> None:
        """Column form of :meth:`_refresh_voice_deadlines`.

        The object path skips unknown terminal ids (``by_id.get`` misses);
        here they must be masked *before* the gather or the fancy index
        itself raises.
        """
        tids = columns.terminal_ids
        known = tids < len(population)
        if not known.all():
            tids = np.where(known, tids, 0)
        heads = population.head_created[tids]
        refresh = columns.is_voice & known & (heads >= 0)
        if refresh.any():
            remaining = np.maximum(
                0, heads + self.params.voice_deadline_frames - frame_index
            )
            columns.deadline_frames[refresh] = (
                frame_index + remaining[refresh]
            )

    # ------------------------------------------------------------ internals
    def _refresh_voice_deadlines(
        self, requests: List[Request], by_id, frame_index: int
    ) -> None:
        """Update backlogged voice requests to their terminal's current deadline.

        A queued voice request may outlive the packet it was originally made
        for (that packet could have been dropped and a new one generated);
        the priority metric must therefore look at the current head-of-line
        packet's deadline, not the stale one recorded at arrival time.
        """
        for request in requests:
            if not request.kind.is_voice:
                continue
            terminal = by_id.get(request.terminal_id)
            if terminal is None:
                continue
            remaining = terminal.head_deadline_frames(frame_index)
            if remaining is not None:
                request.deadline_frame = frame_index + remaining
