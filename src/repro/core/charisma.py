"""CHARISMA: CHannel Adaptive Reservation-based ISochronous Multiple Access.

This is the paper's proposed protocol (Section 4).  It is a dynamic-TDMA
protocol whose distinctive feature is that the base station *first gathers*
all contention requests of the frame (plus the backlog and the auto-generated
requests of voice reservation holders) and only *then* assigns the
information slots — ranked by a priority metric that combines each request's
estimated CSI (through the throughput the adaptive PHY would deliver), its
deadline or waiting time, and its service class.  Users in deep fades are
deferred while their deadlines allow, so information slots are never spent on
transmissions that the channel would almost certainly destroy; users close to
their deadline are served regardless, for fairness.

Frame procedure (uplink, Fig. 4a / Section 4.3)
-----------------------------------------------
1. *Request phase*: contention in ``N_r`` minislots, gated by the permission
   probabilities; each successful request carries pilot symbols from which
   the base station estimates the sender's CSI.
2. *CSI polling*: up to ``N_b`` backlogged requests with stale estimates are
   polled and their CSI refreshed (Section 4.4).
3. *Allocation phase*: all pending requests are ranked by the priority
   metric (equation (2)) and the ``N_i`` information slots are granted by the
   CSI-ranked allocator.  Voice requests that get served acquire a
   reservation — the base station auto-generates their subsequent per-period
   requests until the talkspurt ends.
4. Requests that survived contention but obtained no slots are stored in the
   base-station request queue (with-queue variant) or discarded so the
   device contends again (without-queue variant).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.config import SimulationParameters
from repro.core.allocator import CSIRankedAllocator
from repro.core.csi_polling import CSIPoller
from repro.core.priority import PriorityCalculator
from repro.mac.base import MACProtocol, terminal_lookup
from repro.mac.contention import run_contention
from repro.mac.frames import FrameStructure
from repro.mac.requests import Acknowledgement, FrameOutcome, Request
from repro.phy.abicm import AdaptiveModem
from repro.phy.csi import CSIEstimator
from repro.traffic.terminal import Terminal

__all__ = ["CharismaProtocol"]


class CharismaProtocol(MACProtocol):
    """The channel-adaptive, CSI-scheduled uplink access protocol."""

    name = "charisma"
    display_name = "CHARISMA"
    uses_adaptive_phy = True
    uses_csi_scheduling = True
    supports_request_queue = True

    def __init__(
        self,
        params: SimulationParameters,
        modem: AdaptiveModem,
        rng: np.random.Generator,
        use_request_queue: bool = False,
        csi_estimator: Optional[CSIEstimator] = None,
        enable_csi_polling: bool = True,
    ) -> None:
        if not modem.is_adaptive:
            raise ValueError("CHARISMA requires the adaptive physical layer")
        super().__init__(params, modem, rng, use_request_queue=use_request_queue)
        self.csi_estimator = csi_estimator or CSIEstimator(
            n_pilot_symbols=params.pilot_symbols_per_request,
            mean_snr_db=params.mean_snr_db,
            validity_frames=params.csi_validity_frames,
            rng=rng,
        )
        self.priority_calculator = PriorityCalculator(params.priority, modem)
        self.allocator = CSIRankedAllocator(modem, params.n_info_slots)
        self.enable_csi_polling = bool(enable_csi_polling)
        self.csi_poller = CSIPoller(self.csi_estimator, params.n_pilot_slots)

    # ------------------------------------------------------------ interface
    def _build_frame_structure(self) -> FrameStructure:
        return FrameStructure(
            name=self.display_name,
            request_minislots=self.params.n_request_slots,
            info_slots=self.params.n_info_slots,
            pilot_minislots=self.params.n_pilot_slots,
            dynamic=False,
            minislots_per_info_slot=self.params.drma_minislots_per_info_slot,
        )

    def run_frame(
        self,
        frame_index: int,
        terminals: Sequence[Terminal],
        snapshot: ChannelSnapshot,
    ) -> FrameOutcome:
        self.release_finished_reservations(terminals)
        self.prune_queue(frame_index, terminals)
        by_id = terminal_lookup(terminals)
        outcome = FrameOutcome(frame_index)

        # ----------------------------------------------------- request phase
        candidates = self.contention_candidates(terminals)
        contention = run_contention(
            candidates, self.frame_structure.request_minislots, self.permission, self.rng
        )
        outcome.contention_attempts = contention.attempts
        outcome.contention_collisions = contention.collisions
        outcome.idle_request_slots = contention.idle_slots

        # The winners' pilot symbols are estimated with one batched noise
        # draw (stream-identical to per-winner estimation).
        winner_estimates = self.csi_estimator.estimate_many(
            [snapshot.amplitude_of(w.terminal_id) for w in contention.winners],
            frame_index,
        )
        new_requests: List[Request] = []
        for slot, (winner, csi) in enumerate(zip(contention.winners, winner_estimates)):
            outcome.acknowledgements.append(
                Acknowledgement(winner.terminal_id, slot, frame_index)
            )
            new_requests.append(self.make_request(winner, frame_index, csi=csi))

        # Auto-generated requests of voice reservation holders: their ongoing
        # per-period transmissions double as pilots, so the base station has a
        # current estimate of their channel.
        reserved = self.reservations.reserved_terminals(terminals)
        reserved_estimates = self.csi_estimator.estimate_many(
            [snapshot.amplitude_of(t.terminal_id) for t in reserved], frame_index
        )
        reservation_requests: List[Request] = [
            self.make_request(terminal, frame_index, csi=csi, is_reservation=True)
            for terminal, csi in zip(reserved, reserved_estimates)
        ]

        # Backlog from previous frames (with-queue variant only).
        backlog: List[Request] = (
            self.request_queue.pop_all() if self.request_queue is not None else []
        )
        self._refresh_voice_deadlines(backlog, by_id, frame_index)
        if backlog and self.enable_csi_polling:
            # One batched priority evaluation for the whole backlog; the
            # poller's key then reads precomputed values instead of paying
            # the vectorised machinery per request.
            backlog_priority = dict(
                zip(
                    map(id, backlog),
                    self.priority_calculator.priorities(backlog, frame_index),
                )
            )
            self.csi_poller.refresh(
                backlog,
                snapshot,
                frame_index,
                priority_key=lambda r: backlog_priority[id(r)],
            )

        # -------------------------------------------------- allocation phase
        pending = reservation_requests + new_requests + backlog
        ranked = self.priority_calculator.rank(pending, frame_index)
        decision = self.allocator.allocate(ranked, by_id, snapshot, frame_index)
        outcome.allocations.extend(decision.allocations)

        # Newly served voice requests acquire a reservation.
        allocated_ids = {a.terminal_id for a in decision.allocations}
        for request in pending:
            if (
                request.kind.is_voice
                and not request.is_reservation
                and request.terminal_id in allocated_ids
            ):
                self.reservations.grant(request.terminal_id, frame_index)

        # Unserved / deferred requests go back to the queue (or are dropped).
        self.queue_unserved(decision.leftovers)
        outcome.queued_requests = self.queued_count()
        return outcome

    # ------------------------------------------------------------ internals
    def _refresh_voice_deadlines(
        self, requests: List[Request], by_id, frame_index: int
    ) -> None:
        """Update backlogged voice requests to their terminal's current deadline.

        A queued voice request may outlive the packet it was originally made
        for (that packet could have been dropped and a new one generated);
        the priority metric must therefore look at the current head-of-line
        packet's deadline, not the stale one recorded at arrival time.
        """
        for request in requests:
            if not request.kind.is_voice:
                continue
            terminal = by_id.get(request.terminal_id)
            if terminal is None:
                continue
            remaining = terminal.head_deadline_frames(frame_index)
            if remaining is not None:
                request.deadline_frame = frame_index + remaining
