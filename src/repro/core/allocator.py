"""CSI-ranked information-slot allocator (paper Section 4.3, Fig. 8b).

After the request phase the base station holds a pool of pending requests —
new ones, backlogged ones, and the auto-generated requests of voice
reservation holders.  The allocator walks that pool in decreasing priority
order and hands out the ``N_i`` information slots of the frame:

* a voice request receives one slot (one 20 ms voice packet per period);
* a data request receives as many slots as it needs to drain its buffer at
  the mode its estimated CSI supports, bounded by what remains;
* a request whose estimated CSI is in *outage* (below the adaptation range)
  is deferred — granting it would almost certainly waste the slot — unless
  it is a voice request about to miss its deadline, in which case fairness
  wins and the slot is granted at the most robust mode anyway.

Requests left over (no slots, or deferred) are returned so the protocol can
queue them (with-queue variant) or drop them (without-queue variant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.mac.requests import Allocation, GrantColumns, Request, RequestColumns
from repro.phy.abicm import AdaptiveModem
from repro.traffic.terminal import Terminal

__all__ = ["AllocationDecision", "CSIRankedAllocator"]


@dataclass
class AllocationDecision:
    """Result of one frame's slot-allocation pass.

    Attributes
    ----------
    allocations:
        Slot grants, in the order they were made (highest priority first).
    unserved:
        Requests that received no slots (out of capacity).
    deferred:
        Requests skipped because their channel was in outage and their
        deadline allowed waiting for a better channel state.
    slots_used:
        Total information slots granted.
    """

    allocations: List[Allocation] = field(default_factory=list)
    unserved: List[Request] = field(default_factory=list)
    deferred: List[Request] = field(default_factory=list)
    slots_used: int = 0

    @property
    def leftovers(self) -> List[Request]:
        """Requests that remain pending after this frame (unserved + deferred)."""
        return self.unserved + self.deferred


class CSIRankedAllocator:
    """Allocates information slots to prioritised requests.

    Parameters
    ----------
    modem:
        The adaptive modem (provides packets-per-slot at an estimated CSI).
    n_info_slots:
        Information slots available per frame (``N_i``).
    defer_deadline_margin:
        A voice request in outage is still granted a slot once its deadline
        is within this many frames (the "fairness" escape hatch); with the
        default of 2 the request gets one last-chance transmission before the
        packet would be dropped.
    """

    def __init__(
        self,
        modem: AdaptiveModem,
        n_info_slots: int,
        defer_deadline_margin: int = 2,
    ) -> None:
        if n_info_slots < 1:
            raise ValueError("n_info_slots must be at least 1")
        if defer_deadline_margin < 0:
            raise ValueError("defer_deadline_margin must be non-negative")
        self._modem = modem
        self._n_slots = int(n_info_slots)
        self._margin = int(defer_deadline_margin)
        self._column_lut: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def n_info_slots(self) -> int:
        """Information slots available per frame."""
        return self._n_slots

    @property
    def defer_deadline_margin(self) -> int:
        """Frames-to-deadline below which outage voice requests are served anyway."""
        return self._margin

    # ------------------------------------------------------------------ API
    def allocate(
        self,
        ranked_requests: Sequence[Request],
        terminals_by_id: Dict[int, Terminal],
        snapshot: ChannelSnapshot,
        frame_index: int,
    ) -> AllocationDecision:
        """Grant the frame's information slots to the ranked requests."""
        decision = AllocationDecision()
        slots_left = self._n_slots
        capacities = self._capacities_from_csi(ranked_requests)
        for request, (per_slot, throughput) in zip(ranked_requests, capacities):
            terminal = terminals_by_id.get(request.terminal_id)
            if terminal is None or not terminal.has_pending_packets:
                continue
            if slots_left <= 0:
                decision.unserved.append(request)
                continue

            if per_slot == 0:
                if self._must_serve_despite_outage(request, frame_index):
                    per_slot, throughput = 1, self._modem.mode_table[0].throughput
                else:
                    decision.deferred.append(request)
                    continue

            n_slots = self._slots_for(request, terminal, per_slot, slots_left)
            decision.allocations.append(
                Allocation(
                    terminal_id=terminal.terminal_id,
                    n_slots=n_slots,
                    packet_capacity=per_slot * n_slots,
                    throughput=throughput,
                )
            )
            slots_left -= n_slots
            decision.slots_used += n_slots
        return decision

    def allocate_columns(
        self,
        columns: RequestColumns,
        order: np.ndarray,
        population,
        frame_index: int,
        grants: GrantColumns,
        per_slot: Optional[np.ndarray] = None,
        throughput: Optional[np.ndarray] = None,
    ) -> Tuple[List[int], List[int]]:
        """Column form of :meth:`allocate` for the array-native CHARISMA.

        ``order`` is the priority ranking (row indices, best first); grants
        land in ``grants`` and the method returns ``(unserved_rows,
        deferred_rows)`` so the protocol can queue the leftovers.  Decision
        for decision identical to :meth:`allocate` on the materialised
        ranked requests: the per-row capacities come from one vectorised
        mode lookup over the estimated CSIs (zero packets marks outage; a
        missing estimate falls back to the most robust mode), and the
        sequential slots-left walk runs over plain Python scalars.
        ``per_slot``/``throughput`` optionally supply the capacity columns
        from a caller that already performed the frame's mode lookup.
        """
        n = len(columns)
        unserved: List[int] = []
        deferred: List[int] = []
        if n == 0:
            return unserved, deferred
        if per_slot is None or throughput is None:
            packs_lut, thr_lut = self._column_tables()
            per_slot = np.zeros(n, dtype=np.int64)
            throughput = np.zeros(n, dtype=float)
            known = ~np.isnan(columns.csi_amplitudes)
            unknown = ~known
            if unknown.any():
                per_slot[unknown] = packs_lut[1]
                throughput[unknown] = thr_lut[1]
            if known.any():
                # mode_index yields -1 for outage, i for mode i; +1 lands on
                # the LUT rows (0 = outage, i + 1 = mode i).
                indices = self._modem.mode_index(columns.csi_amplitudes[known]) + 1
                per_slot[known] = packs_lut[indices]
                throughput[known] = thr_lut[indices]

        occupancies = population.occupancy[columns.terminal_ids]
        tid_list = columns.terminal_ids.tolist()
        voice_list = columns.is_voice.tolist()
        occupancy_list = occupancies.tolist()
        per_list = per_slot.tolist()
        throughput_list = throughput.tolist()
        deadline_list = columns.deadline_frames.tolist()
        lowest_throughput = self._modem.mode_table[0].throughput
        margin = self._margin
        append = grants.append
        slots_left = self._n_slots

        for row in order.tolist():
            occupancy = occupancy_list[row]
            if occupancy == 0:
                continue
            if slots_left <= 0:
                unserved.append(row)
                continue
            packets = per_list[row]
            mode_throughput = throughput_list[row]
            if packets == 0:
                deadline = deadline_list[row]
                if (
                    voice_list[row]
                    and deadline >= 0
                    and max(0, deadline - frame_index) <= margin
                ):
                    packets, mode_throughput = 1, lowest_throughput
                else:
                    deferred.append(row)
                    continue
            if voice_list[row]:
                n_slots = 1
            else:
                needed = math.ceil(occupancy / max(1, packets))
                n_slots = max(1, min(slots_left, needed))
            append(tid_list[row], n_slots, packets * n_slots, mode_throughput)
            slots_left -= n_slots
        return unserved, deferred

    # ------------------------------------------------------------ internals
    def _column_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-mode (packets, throughput) lookup: row 0 outage, row 1+ modes.

        Row 0 encodes outage as zero packets (NaN throughput, never
        granted); row ``mode_index + 1`` holds the mode's capacity pair —
        the vectorised twin of :meth:`_capacities_from_csi`'s scalar cases,
        with "no estimate" mapping to row 1 (the most robust mode).
        """
        if self._column_lut is None:
            table = self._modem.mode_table
            reference = table.reference_throughput
            packs = [0] + [
                table[i].packets_per_slot(reference) for i in range(len(table))
            ]
            thrs = [np.nan] + [table[i].throughput for i in range(len(table))]
            self._column_lut = (
                np.asarray(packs, dtype=np.int64),
                np.asarray(thrs, dtype=float),
            )
        return self._column_lut

    def _capacities_from_csi(
        self, requests: Sequence[Request]
    ) -> List[Tuple[int, Optional[float]]]:
        """Batched per-request capacities: one mode lookup for the frame.

        Requests without an estimate are conservatively treated as the most
        robust mode; estimated ones get the mode their CSI supports, with
        ``(0, None)`` marking outage — element-for-element identical to the
        scalar ``select_mode`` path.
        """
        table = self._modem.mode_table
        reference = table.reference_throughput
        lowest = table[0]
        lowest_pair = (lowest.packets_per_slot(reference), lowest.throughput)
        known = [
            index for index, request in enumerate(requests) if request.csi is not None
        ]
        capacities: List[Tuple[int, Optional[float]]] = [lowest_pair] * len(requests)
        if not known:
            return capacities
        mode_indices = self._modem.mode_index(
            np.fromiter(
                (requests[index].csi.amplitude for index in known),
                dtype=float,
                count=len(known),
            )
        )
        for position, mode_index in zip(known, mode_indices):
            if mode_index < 0:
                capacities[position] = (0, None)
            else:
                mode = table[mode_index]
                capacities[position] = (
                    mode.packets_per_slot(reference),
                    mode.throughput,
                )
        return capacities

    def _must_serve_despite_outage(self, request: Request, frame_index: int) -> bool:
        if not request.kind.is_voice:
            return False
        remaining = request.frames_to_deadline(frame_index)
        return remaining is not None and remaining <= self._margin

    def _slots_for(
        self, request: Request, terminal: Terminal, per_slot: int, slots_left: int
    ) -> int:
        if request.kind.is_voice:
            return 1
        needed = math.ceil(terminal.buffer_occupancy / max(1, per_slot))
        return max(1, min(slots_left, needed))
