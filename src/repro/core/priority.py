"""CHARISMA's request-priority metric (paper equation (2)).

Every request gathered by the base station — new, backlogged, or an
auto-generated voice reservation — receives a scalar priority that blends

* the **channel term**: the normalised throughput the adaptive PHY would
  deliver at the request's estimated CSI (``f(CSI)``), weighted by ``alpha``;
  users in good channels use the bandwidth more effectively, so they are
  preferred;
* the **urgency term**: for voice, an exponential of the number of frames
  remaining to the head-of-line packet's deadline (forgetting factor
  ``beta_v``) — the closer the deadline, the larger the term; for data, one
  minus an exponential of the waiting time (forgetting factor ``beta_d``) —
  the longer a request has waited, the larger the term;
* the **service-class offset** ``V`` added to voice requests so that voice
  always outranks data at comparable channel conditions.

The weights live in :class:`repro.config.PriorityWeights`, so experiments can
ablate the relative importance of urgency, channel quality and traffic type
exactly as the paper's discussion of the ``alpha``/``beta``/``V`` parameters
suggests.
"""

from __future__ import annotations

from typing import Optional

from repro.config import PriorityWeights
from repro.mac.base import Modem
from repro.mac.requests import Request

__all__ = ["PriorityCalculator"]


class PriorityCalculator:
    """Computes the CHARISMA priority of a pending request.

    Parameters
    ----------
    weights:
        The metric's tunable weights (``alpha``, ``beta``, ``V``).
    modem:
        The adaptive modem used to translate an estimated CSI amplitude into
        the normalised throughput ``f(CSI)``.
    """

    def __init__(self, weights: PriorityWeights, modem: Modem) -> None:
        self._weights = weights
        self._modem = modem

    @property
    def weights(self) -> PriorityWeights:
        """The metric's weights."""
        return self._weights

    # ------------------------------------------------------------------ API
    def channel_term(self, request: Request) -> float:
        """Normalised throughput at the request's estimated CSI (0 if unknown)."""
        if request.csi is None:
            return 0.0
        return float(self._modem.throughput(request.csi.amplitude))

    def urgency_term(self, request: Request, current_frame: int) -> float:
        """Deadline / waiting-time contribution of the request."""
        w = self._weights
        if request.kind.is_voice:
            remaining = request.frames_to_deadline(current_frame)
            if remaining is None:
                remaining = 0
            return w.urgency_weight_voice * (w.beta_voice ** max(0, remaining))
        waited = request.waiting_frames(current_frame)
        return w.urgency_weight_data * (1.0 - w.beta_data ** max(0, waited))

    def priority(self, request: Request, current_frame: int) -> float:
        """Full priority value of the request at ``current_frame``."""
        w = self._weights
        channel = self.channel_term(request)
        urgency = self.urgency_term(request, current_frame)
        if request.kind.is_voice:
            return w.alpha_voice * channel + urgency + w.voice_offset
        return w.alpha_data * channel + urgency

    def rank(self, requests, current_frame: int):
        """Return the requests sorted by decreasing priority (stable)."""
        return sorted(
            requests,
            key=lambda r: self.priority(r, current_frame),
            reverse=True,
        )
