"""CHARISMA's request-priority metric (paper equation (2)).

Every request gathered by the base station — new, backlogged, or an
auto-generated voice reservation — receives a scalar priority that blends

* the **channel term**: the normalised throughput the adaptive PHY would
  deliver at the request's estimated CSI (``f(CSI)``), weighted by ``alpha``;
  users in good channels use the bandwidth more effectively, so they are
  preferred;
* the **urgency term**: for voice, an exponential of the number of frames
  remaining to the head-of-line packet's deadline (forgetting factor
  ``beta_v``) — the closer the deadline, the larger the term; for data, one
  minus an exponential of the waiting time (forgetting factor ``beta_d``) —
  the longer a request has waited, the larger the term;
* the **service-class offset** ``V`` added to voice requests so that voice
  always outranks data at comparable channel conditions.

The weights live in :class:`repro.config.PriorityWeights`, so experiments can
ablate the relative importance of urgency, channel quality and traffic type
exactly as the paper's discussion of the ``alpha``/``beta``/``V`` parameters
suggests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import PriorityWeights
from repro.mac.base import Modem
from repro.mac.requests import Request

__all__ = ["PriorityCalculator"]


class PriorityCalculator:
    """Computes the CHARISMA priority of a pending request.

    Parameters
    ----------
    weights:
        The metric's tunable weights (``alpha``, ``beta``, ``V``).
    modem:
        The adaptive modem used to translate an estimated CSI amplitude into
        the normalised throughput ``f(CSI)``.
    """

    def __init__(self, weights: PriorityWeights, modem: Modem) -> None:
        self._weights = weights
        self._modem = modem

    @property
    def weights(self) -> PriorityWeights:
        """The metric's weights."""
        return self._weights

    # ------------------------------------------------------------------ API
    def channel_term(self, request: Request) -> float:
        """Normalised throughput at the request's estimated CSI (0 if unknown)."""
        if request.csi is None:
            return 0.0
        return float(self._modem.throughput(request.csi.amplitude))

    def urgency_term(self, request: Request, current_frame: int) -> float:
        """Deadline / waiting-time contribution of the request."""
        w = self._weights
        if request.kind.is_voice:
            remaining = request.frames_to_deadline(current_frame)
            if remaining is None:
                remaining = 0
            return float(w.urgency_weight_voice * np.power(w.beta_voice, max(0, remaining)))
        waited = request.waiting_frames(current_frame)
        return float(w.urgency_weight_data * (1.0 - np.power(w.beta_data, max(0, waited))))

    def priority(self, request: Request, current_frame: int) -> float:
        """Full priority value of the request at ``current_frame``.

        Computed through :meth:`priorities` so scalar and batched callers
        (the poller's priority key, the ranked allocation pass) see exactly
        the same floating-point values.
        """
        return float(self.priorities([request], current_frame)[0])

    def priorities(self, requests: Sequence[Request], current_frame: int) -> np.ndarray:
        """Vectorised priority evaluation over a frame's pending requests.

        One modem lookup over all estimated CSIs plus array urgency terms —
        the per-request scalar path dominated CHARISMA's frame cost on the
        columnar backend.
        """
        n = len(requests)
        if n == 0:
            return np.zeros(0, dtype=float)
        w = self._weights
        voice = np.fromiter(
            (r.kind.is_voice for r in requests), dtype=bool, count=n
        )
        # Channel term: throughput at the estimated CSI, 0 when unknown.
        amplitudes = np.fromiter(
            (r.csi.amplitude if r.csi is not None else -1.0 for r in requests),
            dtype=float,
            count=n,
        )
        channel = np.zeros(n, dtype=float)
        known = amplitudes >= 0.0
        if np.any(known):
            channel[known] = np.asarray(
                self._modem.throughput(amplitudes[known]), dtype=float
            )
        # Urgency term: frames to deadline (voice) / frames waited (data).
        horizon = np.fromiter(
            (
                max(
                    0,
                    (
                        (request.frames_to_deadline(current_frame) or 0)
                        if request.kind.is_voice
                        else request.waiting_frames(current_frame)
                    ),
                )
                for request in requests
            ),
            dtype=float,
            count=n,
        )
        urgency = np.where(
            voice,
            w.urgency_weight_voice * np.power(w.beta_voice, horizon),
            w.urgency_weight_data * (1.0 - np.power(w.beta_data, horizon)),
        )
        alpha = np.where(voice, w.alpha_voice, w.alpha_data)
        offset = np.where(voice, w.voice_offset, 0.0)
        return alpha * channel + urgency + offset

    def priorities_columns(
        self,
        columns,
        current_frame: int,
        channel: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Priority evaluation directly over request columns.

        The column twin of :meth:`priorities`: reads a
        :class:`~repro.mac.requests.RequestColumns` pool (NaN amplitude =
        no estimate, deadline ``-1`` = none) and performs the same
        floating-point operations in the same order, so the returned values
        are bit-identical to evaluating materialised :class:`Request`
        objects.  ``channel`` optionally supplies the precomputed
        ``f(CSI)`` column (0 where no estimate is attached) so a caller
        that already performed the frame's mode lookup shares it instead of
        paying a second amplitude-to-mode conversion.
        """
        n = len(columns)
        if n == 0:
            return np.zeros(0, dtype=float)
        w = self._weights
        voice = columns.is_voice
        if channel is None:
            amplitudes = columns.csi_amplitudes
            known = ~np.isnan(amplitudes)
            if known.all():
                channel = np.asarray(
                    self._modem.throughput(amplitudes), dtype=float
                )
            else:
                channel = np.zeros(n, dtype=float)
                if known.any():
                    channel[known] = np.asarray(
                        self._modem.throughput(amplitudes[known]), dtype=float
                    )
        # A ``-1`` (no-deadline) sentinel clamps to horizon 0 on its own,
        # exactly like the object path's ``frames_to_deadline(...) or 0``.
        horizon = np.where(
            voice,
            np.maximum(0, columns.deadline_frames - current_frame),
            np.maximum(0, current_frame - columns.arrival_frames),
        ).astype(float)
        urgency = np.where(
            voice,
            w.urgency_weight_voice * np.power(w.beta_voice, horizon),
            w.urgency_weight_data * (1.0 - np.power(w.beta_data, horizon)),
        )
        if w.alpha_voice == w.alpha_data:
            weighted = w.alpha_voice * channel
        else:
            weighted = np.where(voice, w.alpha_voice, w.alpha_data) * channel
        offset = np.where(voice, w.voice_offset, 0.0)
        return weighted + urgency + offset

    def rank(self, requests, current_frame: int) -> List[Request]:
        """Return the requests sorted by decreasing priority (stable)."""
        requests = list(requests)
        if len(requests) <= 1:
            return requests
        values = self.priorities(requests, current_frame)
        order = np.argsort(-values, kind="stable")
        return [requests[i] for i in order]
