"""CSI refresh mechanism for backlogged requests (paper Section 4.4, Fig. 10).

A request that waits at the base station for more than a couple of frames
carries a stale CSI estimate.  At the beginning of each frame the base
station short-lists up to ``N_b`` backlog requests whose estimates have
expired — chosen by priority — and broadcasts a CSI polling packet listing
their IDs; the listed devices transmit pilot symbols in the pilot-symbol
subframe, and the base station refreshes their estimates, which then remain
valid for another couple of frames.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.channel.manager import ChannelSnapshot
from repro.mac.requests import Request
from repro.phy.csi import CSIEstimator

__all__ = ["CSIPoller"]


class CSIPoller:
    """Refreshes stale CSI estimates of backlogged requests via polling.

    Parameters
    ----------
    estimator:
        The pilot-symbol CSI estimator shared with the request phase.
    n_pilot_slots:
        Number of pilot-symbol minislots per frame (``N_b``), i.e. how many
        backlog requests can be refreshed per frame.
    """

    def __init__(self, estimator: CSIEstimator, n_pilot_slots: int) -> None:
        if n_pilot_slots < 1:
            raise ValueError("n_pilot_slots must be at least 1")
        self._estimator = estimator
        self._n_pilot_slots = int(n_pilot_slots)
        self._polls_sent = 0

    @property
    def n_pilot_slots(self) -> int:
        """Polling capacity per frame."""
        return self._n_pilot_slots

    @property
    def polls_sent(self) -> int:
        """Total number of poll responses processed so far."""
        return self._polls_sent

    def stale_requests(self, requests: Sequence[Request], frame_index: int) -> List[Request]:
        """Backlog requests whose CSI estimate has expired."""
        return [
            r for r in requests
            if r.csi is None or r.csi.is_stale(frame_index)
        ]

    def refresh(
        self,
        requests: Sequence[Request],
        snapshot: ChannelSnapshot,
        frame_index: int,
        priority_key: Callable[[Request], float] | None = None,
    ) -> int:
        """Refresh up to ``N_b`` stale requests' CSI estimates in place.

        Parameters
        ----------
        requests:
            The backlog (plus any other pending requests) to consider.
        snapshot:
            Current true channel state, from which the polled devices' pilot
            transmissions are observed.
        frame_index:
            Current frame (stamped onto the fresh estimates).
        priority_key:
            Optional scoring function used to pick which stale requests get
            the limited polling slots (highest score first); FIFO order is
            used when omitted.

        Returns
        -------
        int
            Number of requests whose estimate was refreshed.
        """
        stale = self.stale_requests(requests, frame_index)
        if priority_key is not None:
            stale = sorted(stale, key=priority_key, reverse=True)
        refreshed = 0
        for request in stale[: self._n_pilot_slots]:
            true_amplitude = snapshot.amplitude_of(request.terminal_id)
            request.csi = self._estimator.estimate(true_amplitude, frame_index)
            refreshed += 1
            self._polls_sent += 1
        return refreshed

    def stale_rows(self, columns, frame_index: int) -> np.ndarray:
        """Row indices of a request-column pool whose estimates expired.

        The column twin of :meth:`stale_requests`; exposed separately so
        callers can skip building the polling priorities entirely when no
        row is stale (the common case for short backlogs).
        """
        return np.nonzero(
            (columns.csi_frames < 0)
            | (frame_index - columns.csi_frames >= columns.csi_validity)
        )[0]

    def refresh_columns(
        self,
        columns,
        snapshot: ChannelSnapshot,
        frame_index: int,
        priorities: Optional[np.ndarray] = None,
        stale: Optional[np.ndarray] = None,
    ) -> int:
        """Column form of :meth:`refresh` over a request-column backlog.

        Staleness comes from the CSI frame-stamp column (or a precomputed
        ``stale`` row array from :meth:`stale_rows`), the polling short
        list from a stable descending sort on ``priorities`` (FIFO when
        omitted), and the refreshed estimates from one batched estimator
        call — which consumes the noise stream exactly as :meth:`refresh`'s
        per-request scalar estimates would, in the same short-list order.
        """
        if stale is None:
            stale = self.stale_rows(columns, frame_index)
        if priorities is not None and stale.shape[0] > 1:
            stale = stale[np.argsort(-priorities[stale], kind="stable")]
        polled = stale[: self._n_pilot_slots]
        if not polled.shape[0]:
            return 0
        estimates = self._estimator.estimate_amplitudes(
            snapshot.amplitude[columns.terminal_ids[polled]], frame_index
        )
        columns.csi_amplitudes[polled] = estimates
        columns.csi_frames[polled] = frame_index
        self._polls_sent += int(polled.shape[0])
        return int(polled.shape[0])
