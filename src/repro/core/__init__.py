"""The paper's primary contribution: the CHARISMA protocol.

``repro.core`` contains the pieces that make CHARISMA different from the
baseline protocols in :mod:`repro.mac`:

* :class:`~repro.core.priority.PriorityCalculator` — the CSI / urgency /
  service-class priority metric of equation (2);
* :class:`~repro.core.allocator.CSIRankedAllocator` — the gather-then-assign
  slot allocation that defers users in deep fades while their deadlines
  allow;
* :class:`~repro.core.csi_polling.CSIPoller` — the pilot-symbol polling that
  keeps backlogged requests' CSI fresh;
* :class:`~repro.core.charisma.CharismaProtocol` — the protocol itself,
  tying those pieces to the shared MAC substrate (contention, reservations,
  request queue).
"""

from repro.core.allocator import AllocationDecision, CSIRankedAllocator
from repro.core.charisma import CharismaProtocol
from repro.core.csi_polling import CSIPoller
from repro.core.priority import PriorityCalculator

__all__ = [
    "AllocationDecision",
    "CSIRankedAllocator",
    "CSIPoller",
    "CharismaProtocol",
    "PriorityCalculator",
]
