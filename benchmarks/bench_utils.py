"""Shared utilities for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md and the registry in
:mod:`repro.analysis.experiments`).  Because the full-scale figures sweep up
to ~180 users for six protocols, the benchmarks default to a *scaled-down*
version — fewer sweep points and shorter simulated time — sized so the whole
suite finishes in a few minutes while still exhibiting the qualitative shapes
the paper reports.

Set the environment variable ``REPRO_BENCH_SCALE`` to a value larger than 1
to lengthen the simulated time per point (e.g. ``REPRO_BENCH_SCALE=10`` for
paper-scale statistics), and ``REPRO_BENCH_FULL=1`` to use the experiments'
full sweep grids.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import get_experiment
from repro.analysis.tables import format_comparison_table
from repro.api import run
from repro.config import SimulationParameters
from repro.sim.results import SweepResult

#: Worker processes for the benchmark sweeps; the grids are expanded and
#: executed through :mod:`repro.api`, so ``REPRO_BENCH_WORKERS=4`` fans the
#: independent runs out across four processes.
BENCH_WORKERS: int = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Multiplier applied to the simulated duration of every benchmark point.
BENCH_SCALE: float = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: When set, benchmarks use each experiment's full sweep grid.
BENCH_FULL: bool = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Simulated seconds per sweep point at scale 1.
BASE_DURATION_S: float = 1.25
BASE_WARMUP_S: float = 0.6

#: Reduced sweep grids used at scale 1 (full grids live in the registry).
#: The top value sits inside the overload region where the protocols
#: separate most clearly (cf. the paper's Figs. 11-13 x-ranges).
REDUCED_VALUES: Dict[str, Sequence[int]] = {
    "voice_sweep": (30, 90, 150),
    "data_sweep": (20, 70, 120),
    "speed_sweep": (10, 50, 80),
}

PARAMS = SimulationParameters()


def bench_duration_s() -> float:
    """Simulated measured time per point for the current scale."""
    return BASE_DURATION_S * BENCH_SCALE


def sweep_values_for(key: str) -> List[int]:
    """Sweep grid used by the benchmark for experiment ``key``."""
    experiment = get_experiment(key)
    if BENCH_FULL:
        return list(experiment.sweep_values)
    return list(REDUCED_VALUES.get(experiment.kind, experiment.sweep_values))


def run_figure(
    key: str,
    cache: Dict[str, Dict[str, SweepResult]],
    seed: int = 0,
) -> Dict[str, SweepResult]:
    """Run (or fetch from the session cache) the sweeps behind one figure.

    Figures 12 and 13 share the exact same simulations (throughput and delay
    are two views of the same runs), so results are cached under a key that
    identifies the workload rather than the figure.
    """
    experiment = get_experiment(key)
    spec = experiment.spec(
        PARAMS,
        values=sweep_values_for(key),
        duration_s=bench_duration_s(),
        seeds=(seed,),
    )
    workload_key = spec.spec_hash()
    if workload_key not in cache:
        results = run(spec, n_workers=BENCH_WORKERS)
        cache[workload_key] = results.to_sweep_results(
            experiment.sweep_parameter()
        )
    return cache[workload_key]


def print_figure(key: str, sweeps: Dict[str, SweepResult]) -> None:
    """Print the figure's series in the paper's row/column layout."""
    experiment = get_experiment(key)
    print()
    print(f"==== {experiment.paper_artifact}: {experiment.description} ====")
    for metric in experiment.metrics:
        print(format_comparison_table(sweeps, metric, title=f"[{metric}]"))
        print()


def loss_at_highest_load(sweeps: Dict[str, SweepResult], protocol: str) -> float:
    """Voice loss of one protocol at the largest swept population."""
    return sweeps[protocol].series("voice_loss_rate")[-1]


def series_at_highest_load(
    sweeps: Dict[str, SweepResult], protocol: str, metric: str
) -> float:
    """Any summary metric of one protocol at the largest swept population."""
    return sweeps[protocol].series(metric)[-1]
