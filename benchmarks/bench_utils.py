"""Shared utilities for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see the
per-experiment index in DESIGN.md and the registry in
:mod:`repro.analysis.experiments`).  Because the full-scale figures sweep up
to ~180 users for six protocols, the benchmarks default to a *scaled-down*
version — fewer sweep points and shorter simulated time — sized so the whole
suite finishes in a few minutes while still exhibiting the qualitative shapes
the paper reports.

Set the environment variable ``REPRO_BENCH_SCALE`` to a value larger than 1
to lengthen the simulated time per point (e.g. ``REPRO_BENCH_SCALE=10`` for
paper-scale statistics), and ``REPRO_BENCH_FULL=1`` to use the experiments'
full sweep grids.

The sweeps run through the :mod:`repro.store` result cache: finished points
are served from ``REPRO_BENCH_CACHE_DIR`` (default ``benchmarks/.bench_cache``;
set it to an empty string to disable caching), so an interrupted or repeated
benchmark session only simulates what is missing.  Each figure additionally
persists a timing/result artifact (``bench_<key>``) into the same store,
building a BENCH trajectory across sessions that future changes can be
compared against (``python -m repro cache stats --cache-dir
benchmarks/.bench_cache``).
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import get_experiment
from repro.analysis.tables import format_comparison_table
from repro.api import run, select_executor
from repro.config import SimulationParameters
from repro.sim.results import SweepResult
from repro.store import CachingExecutor, ResultStore

#: Worker processes for the benchmark sweeps; the grids are expanded and
#: executed through :mod:`repro.api`, so ``REPRO_BENCH_WORKERS=4`` fans the
#: independent runs out across four processes.
BENCH_WORKERS: int = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Multiplier applied to the simulated duration of every benchmark point.
BENCH_SCALE: float = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: When set, benchmarks use each experiment's full sweep grid.
BENCH_FULL: bool = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Result store directory shared by the benchmark sweeps; empty to disable.
BENCH_CACHE_DIR: str = os.environ.get(
    "REPRO_BENCH_CACHE_DIR",
    str(Path(__file__).resolve().parent / ".bench_cache"),
)

#: Simulated seconds per sweep point at scale 1.
BASE_DURATION_S: float = 1.25
BASE_WARMUP_S: float = 0.6

#: Reduced sweep grids used at scale 1 (full grids live in the registry).
#: The top value sits inside the overload region where the protocols
#: separate most clearly (cf. the paper's Figs. 11-13 x-ranges).
REDUCED_VALUES: Dict[str, Sequence[int]] = {
    "voice_sweep": (30, 90, 150),
    "data_sweep": (20, 70, 120),
    "speed_sweep": (10, 50, 80),
}

PARAMS = SimulationParameters()

_STORE: Optional[ResultStore] = None


def bench_store() -> Optional[ResultStore]:
    """The session's shared result store (None when caching is disabled)."""
    global _STORE
    if not BENCH_CACHE_DIR:
        return None
    if _STORE is None:
        _STORE = ResultStore(BENCH_CACHE_DIR)
    return _STORE


def bench_duration_s() -> float:
    """Simulated measured time per point for the current scale."""
    return BASE_DURATION_S * BENCH_SCALE


def sweep_values_for(key: str) -> List[int]:
    """Sweep grid used by the benchmark for experiment ``key``."""
    experiment = get_experiment(key)
    if BENCH_FULL:
        return list(experiment.sweep_values)
    return list(REDUCED_VALUES.get(experiment.kind, experiment.sweep_values))


def run_figure(
    key: str,
    cache: Dict[str, Dict[str, SweepResult]],
    seed: int = 0,
) -> Dict[str, SweepResult]:
    """Run (or fetch from the caches) the sweeps behind one figure.

    Two cache layers cooperate here: the in-session ``cache`` dict (Figures
    12 and 13 share the exact same simulations — throughput and delay are
    two views of the same runs, so results are keyed by workload rather
    than figure) and the on-disk result store, which survives across
    sessions and makes interrupted benchmark runs resumable.
    """
    experiment = get_experiment(key)
    values = sweep_values_for(key)
    spec = experiment.spec(
        PARAMS,
        values=values,
        duration_s=bench_duration_s(),
        seeds=(seed,),
    )
    workload_key = spec.spec_hash()
    if workload_key not in cache:
        store = bench_store()
        # BENCH_WORKERS always forces the choice (1 -> serial), so the
        # wall_s recorded in the bench_<key> artifacts is comparable across
        # machines instead of depending on select_executor's CPU heuristic.
        executor = select_executor(spec.expand(), n_workers=BENCH_WORKERS)
        # NB: ResultStore defines __len__, so an empty store is falsy —
        # compare against None, never truth-test it.
        caching = (
            CachingExecutor(store, inner=executor) if store is not None else None
        )
        started = time.perf_counter()
        results = run(
            spec, executor=caching if caching is not None else executor
        )
        wall_s = time.perf_counter() - started
        cache[workload_key] = results.to_sweep_results(
            experiment.sweep_parameter()
        )
        if store is not None:
            # One artifact per figure: the BENCH trajectory future sessions
            # (and PRs) compare against.
            store.put_artifact(f"bench_{key}", {
                "key": key,
                "paper_artifact": experiment.paper_artifact,
                "spec_hash": workload_key,
                "values": list(values),
                "duration_s": bench_duration_s(),
                "seed": seed,
                "n_runs": spec.n_runs,
                "wall_s": wall_s,
                "cache_hits": caching.hits if caching is not None else 0,
                "cache_misses": (
                    caching.misses if caching is not None else spec.n_runs
                ),
                "recorded_unix": time.time(),
                "records": results.to_records(),
            })
    return cache[workload_key]


def print_figure(key: str, sweeps: Dict[str, SweepResult]) -> None:
    """Print the figure's series in the paper's row/column layout."""
    experiment = get_experiment(key)
    print()
    print(f"==== {experiment.paper_artifact}: {experiment.description} ====")
    for metric in experiment.metrics:
        print(format_comparison_table(sweeps, metric, title=f"[{metric}]"))
        print()


def loss_at_highest_load(sweeps: Dict[str, SweepResult], protocol: str) -> float:
    """Voice loss of one protocol at the largest swept population."""
    return sweeps[protocol].series("voice_loss_rate")[-1]


def series_at_highest_load(
    sweeps: Dict[str, SweepResult], protocol: str, metric: str
) -> float:
    """Any summary metric of one protocol at the largest swept population."""
    return sweeps[protocol].series(metric)[-1]
