"""Fixtures shared by the benchmark harness."""

import pytest

from repro.config import SimulationParameters


@pytest.fixture(scope="session")
def params() -> SimulationParameters:
    """The paper's Table 1 parameters, shared by every benchmark."""
    return SimulationParameters()


@pytest.fixture(scope="session")
def sweep_cache() -> dict:
    """Session-wide cache of sweep results.

    Figures 12 and 13 (and the two metrics of each Figure 11 panel) are
    different views of the same simulations; caching avoids paying for the
    runs twice.
    """
    return {}
