"""Benchmark / regeneration of Figure 12: data throughput vs traffic load.

Six panels — {without, with} request queue crossed with Nv ∈ {0, 10, 20}
background voice users — each plotting the delivered data packets per frame
against the number of data users.  The qualitative shape asserted here
follows the paper's Section 5.2: CHARISMA delivers the highest throughput at
high load (its CSI-ranked allocation packs every frame with good-channel
users), D-TDMA/VR is the closest competitor, the fixed-rate baselines
saturate well below them, and RMAV collapses.
"""

import pytest

from benchmarks.bench_utils import (
    print_figure,
    run_figure,
    series_at_highest_load,
)

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

PANELS = ["fig12a", "fig12b", "fig12c", "fig12d", "fig12e", "fig12f"]
METRIC = "data_throughput_per_frame"


@pytest.mark.parametrize("panel", PANELS)
def test_bench_fig12_data_throughput(benchmark, sweep_cache, panel):
    sweeps = benchmark.pedantic(
        run_figure, args=(panel, sweep_cache), rounds=1, iterations=1
    )
    print_figure(panel, sweeps)

    charisma = series_at_highest_load(sweeps, "charisma", METRIC)
    adaptive_rate = series_at_highest_load(sweeps, "dtdma_vr", METRIC)
    fixed_rate = series_at_highest_load(sweeps, "dtdma_fr", METRIC)
    rmav = series_at_highest_load(sweeps, "rmav", METRIC)
    best = max(series_at_highest_load(sweeps, p, METRIC) for p in sweeps)

    # CHARISMA is (within noise) the best data protocol at high load...
    assert charisma >= 0.9 * best
    # ...and clearly beats the fixed-rate, channel-blind baseline.
    assert charisma > fixed_rate
    # The adaptive PHY alone already beats the fixed-rate PHY.
    assert adaptive_rate >= fixed_rate * 0.9
    # RMAV's single request opportunity per frame starves its data service.
    assert rmav <= 0.6 * charisma
    # Throughput grows (or at least does not collapse) with offered load for
    # CHARISMA across the swept range.
    series = sweeps["charisma"].series(METRIC)
    assert series[-1] >= series[0]
