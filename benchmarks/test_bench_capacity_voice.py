"""Benchmark / regeneration of the Section 5.1 voice-capacity narrative.

The paper reads its Fig. 11 curves off at the 1 % packet-loss threshold and
reports, e.g., that without a request queue CHARISMA accommodates the most
voice users, and that adding the queue increases CHARISMA's and D-TDMA/VR's
capacity substantially while helping DRMA and RAMA only marginally (their
inherent stabilising mechanisms already play the queue's role).

This benchmark runs the capacity search of :mod:`repro.analysis.capacity`
for every protocol (scaled down by default) and prints the resulting
capacity table.
"""

import pytest

from benchmarks.bench_utils import BENCH_SCALE, PARAMS
from repro.analysis.capacity import voice_capacity

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

NO_QUEUE_PROTOCOLS = ["charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav"]
QUEUE_PROTOCOLS = ["charisma", "dtdma_vr", "drma", "rama"]

SEARCH = dict(
    lower=20,
    upper=200,
    step=40,
    duration_s=1.25 * BENCH_SCALE,
    warmup_s=0.6 * BENCH_SCALE,
    seed=3,
)


def run_capacity_study():
    capacities = {}
    for protocol in NO_QUEUE_PROTOCOLS:
        capacities[(protocol, False)] = voice_capacity(
            protocol, PARAMS, use_request_queue=False, **SEARCH
        ).capacity
    for protocol in QUEUE_PROTOCOLS:
        capacities[(protocol, True)] = voice_capacity(
            protocol, PARAMS, use_request_queue=True, **SEARCH
        ).capacity
    return capacities


def test_bench_capacity_voice(benchmark):
    capacities = benchmark.pedantic(run_capacity_study, rounds=1, iterations=1)

    print()
    print("==== Section 5.1: voice users supported at the 1% loss threshold ====")
    print(f"{'protocol':<10} {'no queue':>9} {'with queue':>11}")
    for protocol in NO_QUEUE_PROTOCOLS:
        no_queue = capacities[(protocol, False)]
        with_queue = capacities.get((protocol, True), "-")
        print(f"{protocol:<10} {no_queue:>9} {str(with_queue):>11}")

    no_queue = {p: capacities[(p, False)] for p in NO_QUEUE_PROTOCOLS}
    # CHARISMA supports at least as many voice users as every baseline.
    assert no_queue["charisma"] >= max(no_queue.values()) - SEARCH["step"] // 4
    # RMAV is the most fragile protocol.
    assert no_queue["rmav"] <= no_queue["charisma"]
    # The request queue never hurts CHARISMA or D-TDMA/VR.
    assert capacities[("charisma", True)] >= no_queue["charisma"] - SEARCH["step"] // 4
    assert capacities[("dtdma_vr", True)] >= no_queue["dtdma_vr"] - SEARCH["step"] // 4
