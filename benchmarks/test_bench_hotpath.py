"""Hot-path benchmark: columnar vs object simulation core, frames per second.

Times the 100-terminal reference workload (the ROADMAP's "hot-path
profiling" item) on both engine backends for every protocol and records the
result in ``BENCH_engine.json`` at the repository root, appending to a
history list so the frames/sec trajectory accumulates across sessions.

Methodology
-----------
The two backends produce bit-identical results under a common seed (see
``tests/sim/test_backend_parity.py``), so this benchmark is a pure
like-for-like timing comparison.  Backend measurements are interleaved and
the best of several repetitions is kept, using CPU time, which cancels
machine-load drift between the two sides.

The *reference workload* for the headline speedup is RMAV on 100 terminals:
RMAV's MAC layer is the thinnest of the six protocols (one competitive slot
per frame, no request queue), so its frames/sec is the purest measure of
the frame-loop cost this refactor targets — traffic generation, deadline
expiry, channel advance, grant execution and metrics accumulation.  The
per-protocol table shows the speedup including each protocol's own MAC
overhead (which both backends share).
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_engine.json"

PARAMS = SimulationParameters()

#: The reference workload: 100 terminals at the paper's 80/20 voice/data mix.
N_VOICE = 80
N_DATA = 20
SEED = 1
DURATION_S = 1.0
WARMUP_S = 0.25
REPETITIONS = 4

REFERENCE_PROTOCOL = "rmav"


def _frames_per_second(protocol: str, backend: str) -> float:
    scenario = Scenario(
        protocol=protocol,
        n_voice=N_VOICE,
        n_data=N_DATA,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        seed=SEED,
        engine_backend=backend,
    )
    engine = UplinkSimulationEngine(scenario, PARAMS)
    start = time.process_time()
    engine.run()
    elapsed = time.process_time() - start
    return engine.frame_index / elapsed


def measure() -> dict:
    """Interleaved best-of-N frames/sec for both backends, per protocol."""
    protocols = {}
    for protocol in available_protocols():
        best = {"object": 0.0, "columnar": 0.0}
        for _ in range(REPETITIONS):
            for backend in ("object", "columnar"):
                best[backend] = max(best[backend], _frames_per_second(protocol, backend))
        protocols[protocol] = {
            "object_fps": round(best["object"], 1),
            "columnar_fps": round(best["columnar"], 1),
            "speedup": round(best["columnar"] / best["object"], 3),
        }
    return protocols


def test_bench_hotpath_backends():
    protocols = measure()
    reference = protocols[REFERENCE_PROTOCOL]
    record = {
        "workload": {
            "n_terminals": N_VOICE + N_DATA,
            "n_voice": N_VOICE,
            "n_data": N_DATA,
            "seed": SEED,
            "measured_s": DURATION_S,
            "warmup_s": WARMUP_S,
            "repetitions": REPETITIONS,
            "timer": "process_time, interleaved best-of-N",
        },
        "reference": {
            "protocol": REFERENCE_PROTOCOL,
            "why": "thinnest MAC layer; isolates the frame-loop cost",
            **reference,
        },
        "protocols": protocols,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

    history = []
    if RECORD_PATH.exists():
        try:
            previous = json.loads(RECORD_PATH.read_text())
            history = previous.get("history", [])
            if "latest" in previous:
                history.append(previous["latest"])
        except (json.JSONDecodeError, OSError):
            history = []
    RECORD_PATH.write_text(
        json.dumps({"latest": record, "history": history[-19:]}, indent=2)
        + "\n"
    )

    table = "\n".join(
        f"  {name:10s} object {row['object_fps']:9.0f} fps   "
        f"columnar {row['columnar_fps']:9.0f} fps   {row['speedup']:.2f}x"
        for name, row in protocols.items()
    )
    print(f"\nhot-path backends @ {N_VOICE + N_DATA} terminals:\n{table}")

    # Correctness floor: the columnar backend must beat the object backend
    # decisively on every protocol; the reference workload's headline
    # speedup is recorded in BENCH_engine.json.
    for name, row in protocols.items():
        assert row["speedup"] > 1.5, (name, row)
    assert reference["speedup"] > 2.0, reference
