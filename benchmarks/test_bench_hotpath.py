"""Hot-path benchmark: engine backends and RNG modes, frames per second.

Times the 100-terminal reference workload (the ROADMAP's "hot-path
profiling" item) on both engine backends for every protocol and records the
result in ``BENCH_engine.json`` at the repository root, appending to a
history list so the frames/sec trajectory accumulates across sessions.

Methodology
-----------
The two backends produce bit-identical results under a common seed (see
``tests/sim/test_backend_parity.py``), so the backend table is a pure
like-for-like timing comparison.  Backend measurements are interleaved and
the best of several repetitions is kept, using CPU time, which cancels
machine-load drift between the two sides.

The *reference workload* for the headline speedup is RMAV on 100 terminals:
RMAV's MAC layer is the thinnest of the six protocols (one competitive slot
per frame, no request queue), so its frames/sec is the purest measure of
the frame-loop cost — traffic generation, deadline expiry, channel advance,
grant execution and metrics accumulation.  The per-protocol table shows the
speedup including each protocol's own MAC overhead.

Sections beyond the PR 3 record (``macro``/``dispatches`` added in PR 5):

* the per-protocol table now carries ``macro_fps`` / ``macro_over_columnar``
  — the macro-stepped frame loop (``Scenario.macro_frames=64``, bit
  identical to per-frame in parity mode) against per-frame columnar
  stepping, interleaved with the object backend.  The pair is measured in
  the RNG mode under which the protocol's lookahead engages (recorded per
  protocol as ``macro_rng_mode``): parity for most, **fast** for CHARISMA,
  whose batched-CSI stream only exists in fast mode — its quotient is
  fast-macro over fast-columnar (``macro_base_fps``);
* ``dispatches_per_frame`` — measured ``@kernel(batch=True)`` entries per
  frame per phase (``enable_phase_timing(count_dispatches=True)``, backed
  by ``repro.obs.dispatch``'s entry wrappers and the ``kernel.dispatches``
  metrics counter) for the per-frame and macro-stepped modes, so the
  dispatch floor the macro mode attacks is tracked, not inferred.

* ``mac_kernels`` — the array-native ``run_frame_batch`` kernels (parity
  and fast RNG modes) against the view-walking ``run_frame`` path on the
  same columnar backend, interleaved in-session.  This is the clean
  architecture comparison: absolute fps on this machine drifts by tens of
  percent between sessions (CPU frequency phases), so the kernels' gain is
  only meaningful measured side by side.  A fast-mode run draws a
  *different* traffic realisation than a parity run under the same seed
  (the draw partitioning differs), so the section aggregates throughput
  over several seeds per configuration, which averages the realisation
  difference out.
* ``phase_split`` — the engine's own per-phase timers (traffic / channel /
  MAC / PHY / metrics fractions per protocol, parity mode), so the next
  bottleneck is machine-readable; ``python -m repro profile --json``
  reports the same split for arbitrary scenarios.

``vs_pr3`` compares this tree's columnar fps against the most recent
PR 3-era record found in the file's history (entries without a
``mac_kernels`` section) — indicative only, across-session machine drift
applies.
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.config import SimulationParameters
from repro.mac.registry import available_protocols
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_engine.json"

PARAMS = SimulationParameters()

#: The reference workload: 100 terminals at the paper's 80/20 voice/data mix.
N_VOICE = 80
N_DATA = 20
SEED = 1
DURATION_S = 1.0
WARMUP_S = 0.25
REPETITIONS = 4

#: Seeds over which the parity/fast comparison aggregates (see module doc).
RNG_MODE_SEEDS = (1, 2, 3, 4, 5, 6)

REFERENCE_PROTOCOL = "rmav"


#: Macro block size the ``macro`` section measures (the CLI's recommended
#: "large block" setting; bit-identical to per-frame in parity mode).
MACRO_FRAMES = 64

#: Protocols whose macro lookahead is a hard performance contract: each
#: must beat per-frame stepping by >1.5x in-session (measured in the RNG
#: mode its lookahead engages under — see ``_macro_rng_mode``).
LOOKAHEAD_PROTOCOLS = (
    "charisma", "drma", "dtdma_fr", "dtdma_vr", "rama", "rmav",
)


def _build_engine(protocol: str, backend: str, rng_mode: str, seed: int,
                  use_batch_mac=None, macro_frames: int = 1):
    scenario = Scenario(
        protocol=protocol,
        n_voice=N_VOICE,
        n_data=N_DATA,
        duration_s=DURATION_S,
        warmup_s=WARMUP_S,
        seed=seed,
        engine_backend=backend,
        rng_mode=rng_mode,
        macro_frames=macro_frames,
    )
    return UplinkSimulationEngine(scenario, PARAMS, use_batch_mac=use_batch_mac)


def _run_timed(protocol: str, backend: str, rng_mode: str = "parity",
               seed: int = SEED, use_batch_mac=None,
               macro_frames: int = 1) -> tuple:
    """Run once; return (frames, cpu_seconds)."""
    engine = _build_engine(protocol, backend, rng_mode, seed, use_batch_mac,
                           macro_frames)
    start = time.process_time()
    engine.run()
    return engine.frame_index, time.process_time() - start


def _frames_per_second(protocol: str, backend: str,
                       macro_frames: int = 1,
                       rng_mode: str = "parity") -> float:
    frames, elapsed = _run_timed(protocol, backend, rng_mode,
                                 macro_frames=macro_frames)
    return frames / elapsed


def _macro_rng_mode(protocol: str) -> str:
    """The RNG mode under which the protocol's macro lookahead engages.

    Most protocols advertise ``supports_macro_lookahead`` in parity mode,
    so their macro pair is a parity/parity quotient (and bit-identical to
    per-frame stepping).  CHARISMA's lookahead only engages in fast mode —
    its batched-CSI stream exists only there — so its pair is measured
    fast/fast: same quotient discipline, different (recorded) mode.
    """
    if _build_engine(protocol, "columnar", "parity",
                     SEED).protocol.supports_macro_lookahead:
        return "parity"
    if _build_engine(protocol, "columnar", "fast",
                     SEED).protocol.supports_macro_lookahead:
        return "fast"
    return "parity"


def measure() -> dict:
    """Interleaved best-of-N frames/sec per protocol: object vs columnar
    vs macro-stepped columnar (interleaved, one quotient base per pair).

    The ``macro_over_columnar`` quotient always compares macro-stepped
    against per-frame stepping *in the same RNG mode* (the mode is recorded
    per protocol as ``macro_rng_mode``); when that mode is not parity the
    fast per-frame base is timed as a fourth interleaved leg and recorded
    as ``macro_base_fps``.  ``macro_over_object`` keeps the parity object
    backend as its base and is therefore cross-mode for fast-measured
    protocols — indicative only.
    """
    protocols = {}
    for protocol in available_protocols():
        macro_mode = _macro_rng_mode(protocol)
        best = {"object": 0.0, "columnar": 0.0, "macro_base": 0.0,
                "macro": 0.0}
        for _ in range(REPETITIONS):
            best["object"] = max(
                best["object"], _frames_per_second(protocol, "object"))
            best["columnar"] = max(
                best["columnar"], _frames_per_second(protocol, "columnar"))
            if macro_mode != "parity":
                best["macro_base"] = max(
                    best["macro_base"],
                    _frames_per_second(protocol, "columnar",
                                       rng_mode=macro_mode))
            best["macro"] = max(
                best["macro"],
                _frames_per_second(protocol, "columnar",
                                   macro_frames=MACRO_FRAMES,
                                   rng_mode=macro_mode))
        if macro_mode == "parity":
            best["macro_base"] = best["columnar"]
        protocols[protocol] = {
            "object_fps": round(best["object"], 1),
            "columnar_fps": round(best["columnar"], 1),
            "macro_fps": round(best["macro"], 1),
            "macro_base_fps": round(best["macro_base"], 1),
            "macro_rng_mode": macro_mode,
            "speedup": round(best["columnar"] / best["object"], 3),
            "macro_over_columnar": round(
                best["macro"] / best["macro_base"], 3),
            "macro_over_object": round(best["macro"] / best["object"], 3),
        }
    return protocols


def measure_dispatches() -> dict:
    """Measured batch-kernel dispatches per frame, per phase, per mode.

    A short instrumented pass on a separate engine (the per-kernel entry
    wrappers installed by ``repro.obs.dispatch`` are cheap but not free,
    so counting never contaminates the fps numbers) — the frame loop's
    dispatch floor tracked, not inferred.  Counts are entries into
    ``@kernel(batch=True)`` functions, not raw NumPy C calls, so they are
    stable across NumPy versions.
    """
    dispatches = {}
    for protocol in available_protocols():
        row = {}
        for label, macro_frames in (("columnar", 1), ("macro", MACRO_FRAMES)):
            engine = _build_engine(protocol, "columnar", "parity", SEED,
                                   macro_frames=macro_frames)
            engine.enable_phase_timing(count_dispatches=True)
            try:
                engine.run_frames(512)
                counts = dict(engine.dispatch_counts)
            finally:
                engine.disable_phase_timing()
            per_phase = {
                phase: round(calls / 512, 2) for phase, calls in counts.items()
            }
            per_phase["total"] = round(sum(counts.values()) / 512, 2)
            row[label] = per_phase
        dispatches[protocol] = row
    return dispatches


#: The in-session MAC-architecture comparison configurations:
#: (label, rng_mode, use_batch_mac).
_KERNEL_CONFIGS = (
    ("view_fps", "parity", False),
    ("batch_fps", "parity", True),
    ("fast_fps", "fast", True),
)


def measure_mac_kernels() -> dict:
    """Seed-aggregated view-path vs batch-kernel vs fast-mode throughput.

    All three configurations run on the columnar backend, interleaved seed
    by seed so machine-frequency drift hits them equally; fps is total
    frames over total CPU seconds per configuration.
    """
    kernels = {}
    for protocol in available_protocols():
        totals = {label: [0, 0.0] for label, _, _ in _KERNEL_CONFIGS}
        for seed in RNG_MODE_SEEDS:
            for label, mode, batch in _KERNEL_CONFIGS:
                frames, elapsed = _run_timed(
                    protocol, "columnar", mode, seed, use_batch_mac=batch
                )
                totals[label][0] += frames
                totals[label][1] += elapsed
        fps = {
            label: round(frames / elapsed, 1)
            for label, (frames, elapsed) in totals.items()
        }
        fps["batch_over_view"] = round(fps["batch_fps"] / fps["view_fps"], 3)
        fps["fast_over_view"] = round(fps["fast_fps"] / fps["view_fps"], 3)
        kernels[protocol] = fps
    return kernels


def measure_phase_split() -> dict:
    """Per-protocol traffic/channel/MAC/PHY/metrics fractions (parity mode)."""
    split = {}
    for protocol in available_protocols():
        engine = _build_engine(protocol, "columnar", "parity", SEED)
        phases = engine.enable_phase_timing()
        engine.run()
        total = sum(phases.values()) or 1.0
        split[protocol] = {
            name: round(seconds / total, 4) for name, seconds in phases.items()
        }
    return split


def _previous_latest() -> dict:
    if not RECORD_PATH.exists():
        return {}
    try:
        return json.loads(RECORD_PATH.read_text())
    except (json.JSONDecodeError, OSError):
        return {}


def _pr3_era_protocols(previous: dict) -> dict:
    """The most recent record without a ``mac_kernels`` section (PR 3 era)."""
    candidates = []
    latest = previous.get("latest")
    if latest:
        candidates.append(latest)
    candidates.extend(reversed(previous.get("history", [])))
    for entry in candidates:
        if "mac_kernels" not in entry and "protocols" in entry:
            return entry["protocols"]
    return {}


def test_bench_hotpath_backends():
    previous = _previous_latest()
    protocols = measure()
    kernels = measure_mac_kernels()
    phase_split = measure_phase_split()
    dispatches = measure_dispatches()
    reference = protocols[REFERENCE_PROTOCOL]

    # Trajectory vs the PR 3-era record, per protocol: how much *additional*
    # columnar throughput this tree delivers on the identical workload.
    # Indicative only — absolute fps drifts between sessions on this
    # machine; the in-session `mac_kernels` ratios are the clean comparison.
    vs_pr3 = {}
    for name, row in protocols.items():
        then = _pr3_era_protocols(previous).get(name, {}).get("columnar_fps")
        if then:
            # The fast estimate scales the like-for-like parity comparison
            # (both interleaved best-of-N on the same seed) by the
            # in-session fast/batch ratio (both seed-aggregated) — never
            # mixing the two timing methodologies in one quotient.
            fast_over_batch = (
                kernels[name]["fast_fps"] / kernels[name]["batch_fps"]
            )
            additional = row["columnar_fps"] / then
            vs_pr3[name] = {
                "pr3_columnar_fps": then,
                "columnar_fps": row["columnar_fps"],
                "additional_speedup": round(additional, 3),
                "additional_speedup_fast": round(
                    additional * fast_over_batch, 3
                ),
            }

    record = {
        "workload": {
            "n_terminals": N_VOICE + N_DATA,
            "n_voice": N_VOICE,
            "n_data": N_DATA,
            "seed": SEED,
            "measured_s": DURATION_S,
            "warmup_s": WARMUP_S,
            "repetitions": REPETITIONS,
            "timer": "process_time, interleaved best-of-N",
            "rng_mode_seeds": list(RNG_MODE_SEEDS),
        },
        "reference": {
            "protocol": REFERENCE_PROTOCOL,
            "why": "thinnest MAC layer; isolates the frame-loop cost",
            **reference,
        },
        "protocols": protocols,
        "macro_frames": MACRO_FRAMES,
        "mac_kernels": kernels,
        "phase_split": phase_split,
        "dispatches_per_frame": dispatches,
        "vs_pr3": vs_pr3,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }

    history = previous.get("history", [])
    if "latest" in previous:
        history = history + [previous["latest"]]
    RECORD_PATH.write_text(
        json.dumps({"latest": record, "history": history[-19:]}, indent=2)
        + "\n"
    )

    table = "\n".join(
        f"  {name:10s} object {row['object_fps']:9.0f} fps   "
        f"columnar {row['columnar_fps']:9.0f} fps   {row['speedup']:.2f}x   "
        f"macro {row['macro_fps']:9.0f} fps "
        f"({row['macro_over_columnar']:.2f}x)   "
        f"kernels view {kernels[name]['view_fps']:8.0f} "
        f"batch {kernels[name]['batch_fps']:8.0f} "
        f"fast {kernels[name]['fast_fps']:8.0f}"
        for name, row in protocols.items()
    )
    print(f"\nhot-path backends @ {N_VOICE + N_DATA} terminals:\n{table}")

    # Correctness floor: the columnar backend must beat the object backend
    # decisively on every protocol; the reference workload's headline
    # speedup is recorded in BENCH_engine.json.
    for name, row in protocols.items():
        assert row["speedup"] > 1.5, (name, row)
    assert reference["speedup"] > 2.0, reference
    # The MAC phase must no longer dwarf the frame loop on the MAC-heavy
    # protocols: the kernelised MAC keeps it under three quarters.
    for name, split in phase_split.items():
        assert split["mac"] < 0.75, (name, split)
    # Every current protocol now carries a macro lookahead (inline
    # contended-frame replay for DRMA/RAMA, batched CSI for CHARISMA), so
    # the macro-stepped mode must decisively beat per-frame stepping across
    # the board; 0.9 stays as the never-lose floor for any future protocol
    # that lands without a lookahead (fallback frames still enjoy fused
    # traffic, so macro mode must not cost them anything real).
    for name in LOOKAHEAD_PROTOCOLS:
        assert protocols[name]["macro_over_columnar"] > 1.5, (
            name, protocols[name],
        )
    for name, row in protocols.items():
        assert row["macro_over_columnar"] > 0.9, (name, row)
    # The RAMA batch kernel must pay for itself again (the small-pool
    # columnar round-tripping regression).
    assert kernels["rama"]["batch_over_view"] > 1.0, kernels["rama"]
    # The macro mode must actually lower the measured dispatch floor on the
    # lookahead protocols.
    for name in ("rmav", "dtdma_vr"):
        assert (
            dispatches[name]["macro"]["total"]
            < dispatches[name]["columnar"]["total"]
        ), (name, dispatches[name])


# ---------------------------------------------------------------------------
# Constellation scale-out (PR 10): 100 beams x 100 terminals on one machine.
# ---------------------------------------------------------------------------

#: The constellation demo workload: the ISSUE's scale target is 100 beams of
#: the 100-terminal reference cell (10k terminals total) sustained at >=500
#: aggregate frames/sec on one machine.
CONSTELLATION_BEAMS = 100
CONSTELLATION_WORKER_COUNTS = (1, 4, 8)
CONSTELLATION_DURATION_S = 0.25
CONSTELLATION_WARMUP_S = 0.05
#: Aggregate (summed-over-beams) frames/sec the demo must sustain.
CONSTELLATION_FPS_FLOOR = 500.0


def _constellation_scenario():
    from repro.constellation import ConstellationScenario

    return ConstellationScenario(
        protocol=REFERENCE_PROTOCOL,
        n_beams=CONSTELLATION_BEAMS,
        n_voice=N_VOICE,
        n_data=N_DATA,
        duration_s=CONSTELLATION_DURATION_S,
        warmup_s=CONSTELLATION_WARMUP_S,
        seed=SEED,
        rng_mode="fast",
        macro_frames=MACRO_FRAMES,
    )


def _constellation_fps(n_workers: int) -> float:
    """Aggregate frames/sec of one full constellation run.

    Wall-clock, not CPU time: worker threads are the thing being measured,
    and summed CPU time would cancel the very parallelism the thread-scaling
    row records.  Aggregate fps is total frames stepped across all beams
    over the run's wall seconds.
    """
    from repro.constellation import ConstellationRunner

    runner = ConstellationRunner(_constellation_scenario(), PARAMS,
                                 n_workers=n_workers)
    start = time.perf_counter()
    runner.run()
    elapsed = time.perf_counter() - start
    frames = sum(shard.engine.frame_index for shard in runner.shards)
    return frames / elapsed


def test_bench_constellation():
    """Record the 100-beam demo: aggregate fps and thread scaling.

    Merges a ``constellation`` section into ``BENCH_engine.json``'s
    ``latest`` record (preserving every other section) with the aggregate
    and per-beam frames/sec at each worker count and the scaling ratios
    against the serial run.  On a single-core box the ratios sit near 1.0 —
    ``cpu_count`` is recorded alongside so the numbers read honestly.
    """
    best = {}
    for n_workers in CONSTELLATION_WORKER_COUNTS:
        fps = 0.0
        for _ in range(2):
            fps = max(fps, _constellation_fps(n_workers))
        best[n_workers] = fps

    aggregate = max(best.values())
    serial = best[CONSTELLATION_WORKER_COUNTS[0]]
    section = {
        "workload": {
            "n_beams": CONSTELLATION_BEAMS,
            "n_voice_per_beam": N_VOICE,
            "n_data_per_beam": N_DATA,
            "n_terminals_total": CONSTELLATION_BEAMS * (N_VOICE + N_DATA),
            "protocol": REFERENCE_PROTOCOL,
            "rng_mode": "fast",
            "macro_frames": MACRO_FRAMES,
            "seed": SEED,
            "measured_s": CONSTELLATION_DURATION_S,
            "warmup_s": CONSTELLATION_WARMUP_S,
            "timer": "perf_counter (wall), best-of-2 per worker count",
        },
        "aggregate_fps": round(aggregate, 1),
        "per_beam_fps": round(aggregate / CONSTELLATION_BEAMS, 1),
        "threads": {
            str(n): round(fps, 1) for n, fps in best.items()
        },
        "thread_scaling": {
            str(n): round(fps / serial, 3) for n, fps in best.items()
        },
        "cpu_count": os.cpu_count(),
    }

    previous = _previous_latest()
    latest = previous.get("latest", {})
    latest["constellation"] = section
    previous["latest"] = latest
    RECORD_PATH.write_text(json.dumps(previous, indent=2) + "\n")

    rows = "  ".join(
        f"{n}w {fps:8.0f} fps" for n, fps in best.items()
    )
    print(
        f"\nconstellation @ {CONSTELLATION_BEAMS} beams x "
        f"{N_VOICE + N_DATA} terminals: {rows}"
    )

    assert aggregate >= CONSTELLATION_FPS_FLOOR, section
