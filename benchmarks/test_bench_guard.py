"""Opt-in performance-regression guard against the committed benchmark record.

Re-times the committed ``BENCH_engine.json`` workload on the columnar
backend and fails if any protocol's frames/sec falls more than 25 % below
the recorded baseline — the tripwire for "a refactor quietly made the hot
path slow again".

The guard is **opt-in** (``REPRO_BENCH_GUARD=1``) because wall-clock
performance assertions are inherently machine-dependent: a laptop on
battery, a loaded CI box or a different CPU generation can all sit far from
the committed numbers without any code regression.  Run it on the machine
that produced the record (or after regenerating the record there):

    REPRO_BENCH_GUARD=1 python -m pytest benchmarks/test_bench_guard.py -m bench

The 25 % margin plus interleaved best-of-two CPU timing absorbs normal
scheduler jitter; a real hot-path regression (accidental per-frame object
churn, a dropped fast path) typically costs well over 25 %.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.config import SimulationParameters
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

pytestmark = [pytest.mark.slow, pytest.mark.bench]

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_engine.json"

#: Fraction of the committed fps a protocol may lose before the guard trips.
ALLOWED_DROP = 0.25
#: Matches the record's best-of-N so the two estimators are comparable
#: (a best-of-2 re-measurement sits systematically below a best-of-4 record).
REPETITIONS = 4

#: Protocols whose macro lookahead is a hard in-session contract: each must
#: beat per-frame stepping by more than this factor, measured interleaved
#: on this machine (machine drift cancels out of the quotient, so this
#: floor is absolute, unlike the fps floors above).  Any *future* protocol
#: not in this set only has to clear the never-lose floor.
LOOKAHEAD_PROTOCOLS = frozenset(
    {"charisma", "drma", "dtdma_fr", "dtdma_vr", "rama", "rmav"}
)
LOOKAHEAD_RATIO_FLOOR = 1.5
#: Macro mode must never really lose to per-frame stepping, lookahead or
#: not — fallback frames still run fused traffic, so a ratio below this
#: means macro blocks started costing real work.
NEVER_LOSE_FLOOR = 0.9

PARAMS = SimulationParameters()


def _guard_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_GUARD", "") == "1"


def _committed_record() -> dict:
    if not RECORD_PATH.exists():
        pytest.skip("no committed BENCH_engine.json to guard against")
    return json.loads(RECORD_PATH.read_text())


def _frames_per_second(protocol: str, workload: dict,
                       macro_frames: int = 1,
                       rng_mode: str = "parity") -> float:
    scenario = Scenario(
        protocol=protocol,
        n_voice=workload["n_voice"],
        n_data=workload["n_data"],
        duration_s=workload["measured_s"],
        warmup_s=workload["warmup_s"],
        seed=workload["seed"],
        engine_backend="columnar",
        rng_mode=rng_mode,
        macro_frames=macro_frames,
    )
    engine = UplinkSimulationEngine(scenario, PARAMS)
    start = time.process_time()
    engine.run()
    return engine.frame_index / (time.process_time() - start)


@pytest.mark.skipif(
    not _guard_enabled(),
    reason="perf guard is opt-in: set REPRO_BENCH_GUARD=1 on the machine "
           "that produced BENCH_engine.json",
)
def test_columnar_fps_not_regressed():
    record = _committed_record()
    latest = record.get("latest", {})
    protocols = latest.get("protocols", {})
    workload = latest.get("workload", {})
    if not protocols or not workload:
        pytest.skip("committed BENCH_engine.json has no protocol table")

    measured = {name: 0.0 for name in protocols}
    for _ in range(REPETITIONS):
        for name in protocols:
            measured[name] = max(measured[name], _frames_per_second(name, workload))

    failures = {}
    for name, row in protocols.items():
        floor = row["columnar_fps"] * (1.0 - ALLOWED_DROP)
        if measured[name] < floor:
            failures[name] = {
                "committed_fps": row["columnar_fps"],
                "measured_fps": round(measured[name], 1),
                "floor_fps": round(floor, 1),
            }
    assert not failures, (
        "columnar frames/sec regressed more than "
        f"{ALLOWED_DROP:.0%} below the committed BENCH_engine.json: {failures}"
    )


@pytest.mark.skipif(
    not _guard_enabled(),
    reason="perf guard is opt-in: set REPRO_BENCH_GUARD=1 on the machine "
           "that produced BENCH_engine.json",
)
def test_macro_fps_and_speedup_not_regressed():
    """Guard the macro-stepped record and its in-session speedup ratio.

    Absolute macro fps is guarded like the columnar table (machine-drift
    margin); the ``macro_over_columnar`` ratio is additionally re-measured
    *in-session* — interleaved on the same machine state, in the RNG mode
    the record names for each protocol (``macro_rng_mode``: parity for
    most, fast for CHARISMA, whose CSI batching only engages there) — so a
    quietly dropped lookahead fast path (ratio collapse towards 1.0) trips
    the guard even on a faster machine.

    On top of the drift-margin comparison the in-session ratio carries
    *absolute* floors: every protocol in ``LOOKAHEAD_PROTOCOLS`` must beat
    per-frame stepping by more than ``LOOKAHEAD_RATIO_FLOOR`` (the macro
    lookahead is a contract for all six current protocols, not an
    opportunistic win), and any other protocol must clear
    ``NEVER_LOSE_FLOOR``.
    """
    record = _committed_record()
    latest = record.get("latest", {})
    protocols = latest.get("protocols", {})
    workload = latest.get("workload", {})
    macro_frames = latest.get("macro_frames", 64)
    guarded = {
        name: row for name, row in protocols.items() if "macro_fps" in row
    }
    if not guarded or not workload:
        pytest.skip("committed BENCH_engine.json has no macro record")

    measured = {name: [0.0, 0.0] for name in guarded}  # [per-frame, macro]
    modes = {
        name: row.get("macro_rng_mode", "parity")
        for name, row in guarded.items()
    }
    for _ in range(REPETITIONS):
        for name in guarded:
            measured[name][0] = max(
                measured[name][0],
                _frames_per_second(name, workload, rng_mode=modes[name]))
            measured[name][1] = max(
                measured[name][1],
                _frames_per_second(name, workload, macro_frames=macro_frames,
                                   rng_mode=modes[name]))

    failures = {}
    for name, row in guarded.items():
        per_frame_fps, macro_fps = measured[name]
        floor_fps = row["macro_fps"] * (1.0 - ALLOWED_DROP)
        ratio = macro_fps / per_frame_fps
        ratio_floor = row["macro_over_columnar"] * (1.0 - ALLOWED_DROP)
        if name in LOOKAHEAD_PROTOCOLS:
            ratio_floor = max(ratio_floor, LOOKAHEAD_RATIO_FLOOR)
        else:
            ratio_floor = max(ratio_floor, NEVER_LOSE_FLOOR)
        if macro_fps < floor_fps or ratio < ratio_floor:
            failures[name] = {
                "committed_macro_fps": row["macro_fps"],
                "measured_macro_fps": round(macro_fps, 1),
                "committed_ratio": row["macro_over_columnar"],
                "measured_ratio": round(ratio, 3),
                "ratio_floor": round(ratio_floor, 3),
                "rng_mode": modes[name],
            }
    assert not failures, (
        "macro-stepped performance regressed below the committed "
        f"BENCH_engine.json (drift margin {ALLOWED_DROP:.0%}) or under the "
        f"absolute lookahead ratio floors: {failures}"
    )


#: Aggregate frames/sec the 100-beam constellation demo must always sustain
#: (the ISSUE's scale target), regardless of what the committed record says.
CONSTELLATION_ABSOLUTE_FLOOR = 500.0


@pytest.mark.skipif(
    not _guard_enabled(),
    reason="perf guard is opt-in: set REPRO_BENCH_GUARD=1 on the machine "
           "that produced BENCH_engine.json",
)
def test_constellation_aggregate_fps_not_regressed():
    """Guard the committed constellation record's aggregate frames/sec.

    The floor is ``max(500, committed aggregate x 0.75)`` — the absolute
    scale target never relaxes, and on the recording machine the usual
    drift margin applies on top.  Wall-clock timing (not CPU) because the
    record's thread-scaling row measures worker threads.
    """
    from repro.constellation import ConstellationRunner, ConstellationScenario

    record = _committed_record()
    section = record.get("latest", {}).get("constellation", {})
    workload = section.get("workload", {})
    if not section or not workload:
        pytest.skip("committed BENCH_engine.json has no constellation record")

    scenario = ConstellationScenario(
        protocol=workload["protocol"],
        n_beams=workload["n_beams"],
        n_voice=workload["n_voice_per_beam"],
        n_data=workload["n_data_per_beam"],
        duration_s=workload["measured_s"],
        warmup_s=workload["warmup_s"],
        seed=workload["seed"],
        rng_mode=workload["rng_mode"],
        macro_frames=workload["macro_frames"],
    )
    best = 0.0
    for _ in range(2):
        runner = ConstellationRunner(scenario, PARAMS)
        start = time.perf_counter()
        runner.run()
        elapsed = time.perf_counter() - start
        frames = sum(shard.engine.frame_index for shard in runner.shards)
        best = max(best, frames / elapsed)

    floor = max(
        CONSTELLATION_ABSOLUTE_FLOOR,
        section["aggregate_fps"] * (1.0 - ALLOWED_DROP),
    )
    assert best >= floor, {
        "committed_aggregate_fps": section["aggregate_fps"],
        "measured_aggregate_fps": round(best, 1),
        "floor_fps": round(floor, 1),
    }
