"""Benchmark / regeneration of Figure 7: BER and throughput of the adaptive PHY.

Figure 7(a) shows the instantaneous BER staying at the target level across
the adaptation range and blowing up below it (outage); Figure 7(b) shows the
normalised throughput climbing the 6-mode staircase from 1/2 to 5 as the CSI
improves.  This benchmark sweeps the CSI, prints both curves, and asserts the
constant-BER property and the staircase shape.
"""

import numpy as np

from benchmarks.bench_utils import PARAMS
from repro.phy import AdaptiveModem, ModeTable


def build_modem_and_sweep():
    table = ModeTable(
        throughputs=PARAMS.mode_throughputs,
        target_ber=PARAMS.target_ber,
        reference_throughput=PARAMS.reference_throughput,
    )
    modem = AdaptiveModem(table, mean_snr_db=PARAMS.mean_snr_db,
                          packet_size_bits=PARAMS.packet_size_bits)
    snr_db = np.linspace(-2.0, 35.0, 150)
    amplitudes = 10.0 ** ((snr_db - PARAMS.mean_snr_db) / 20.0)
    throughput = modem.throughput(amplitudes)
    ber = np.array([modem.instantaneous_ber(float(a)) for a in amplitudes])
    return modem, snr_db, throughput, ber


def test_bench_fig7_phy(benchmark):
    modem, snr_db, throughput, ber = benchmark.pedantic(
        build_modem_and_sweep, rounds=1, iterations=1
    )
    table = modem.mode_table

    print()
    print("==== Figure 7(a)/(b): BER and normalised throughput vs CSI ====")
    print(f"target BER: {table.target_ber:.0e}; outage below "
          f"{table.outage_threshold_db:.1f} dB instantaneous SNR")
    print(f"{'SNR (dB)':>9} {'throughput':>11} {'BER':>10}")
    for snr in (0.0, 4.0, 6.0, 9.5, 14.5, 18.0, 21.5, 24.5, 30.0):
        idx = int(np.argmin(np.abs(snr_db - snr)))
        print(f"{snr_db[idx]:9.1f} {throughput[idx]:11.1f} {ber[idx]:10.2e}")

    in_range = snr_db >= table.outage_threshold_db
    # Fig. 7a: constant-BER operation inside the adaptation range, violation
    # below it.
    assert np.all(ber[in_range] <= table.target_ber * 1.0001)
    assert ber[0] > table.target_ber
    # Fig. 7b: monotone staircase from 0 (outage) to the top mode.
    assert np.all(np.diff(throughput) >= 0)
    assert throughput[0] == 0.0
    assert throughput[-1] == table.max_throughput == 5.0
    assert set(np.unique(throughput)) <= {0.0, *PARAMS.mode_throughputs}
    # Exactly six distinct non-outage plateaus.
    assert len(set(np.unique(throughput)) - {0.0}) == 6
