"""Benchmark / regeneration of Table 1: the common simulation parameters.

Prints every parameter of the shared platform together with the frame
structures each protocol derives from it, and times how long constructing the
whole protocol stack takes (a proxy for "simulation setup cost").
"""

import numpy as np

from benchmarks.bench_utils import PARAMS
from repro.analysis.tables import format_kv_table
from repro.mac.registry import available_protocols, create_protocol


def build_all_protocols():
    rng = np.random.default_rng(0)
    return [
        create_protocol(name, PARAMS, rng, use_request_queue=True)
        for name in available_protocols()
    ]


def test_bench_table1_parameters(benchmark):
    protocols = benchmark.pedantic(build_all_protocols, rounds=3, iterations=1)

    print()
    print(format_kv_table(PARAMS.describe(), title="Table 1 — simulation parameters"))
    print()
    print("Derived frame structures (slots per 2.5 ms frame):")
    for protocol in protocols:
        row = protocol.frame_structure.describe()
        print(f"  {row['protocol']:<10} request={row['request_minislots']:<3} "
              f"info={row['info_slots']:<3} pilot={row['pilot_minislots']:<3} "
              f"dynamic={row['dynamic']}")

    # The headline Table 1 values quoted in the paper's prose.
    table = PARAMS.describe()
    assert table["bandwidth_hz"] == 320_000.0
    assert table["frame_duration_ms"] == 2.5
    assert table["voice_bit_rate_kbps"] == 8.0
    assert table["voice_packet_period_ms"] == 20.0
    assert table["voice_deadline_ms"] == 20.0
    assert table["mean_talkspurt_s"] == 1.0
    assert table["mean_silence_s"] == 1.35
    assert table["mean_data_interarrival_s"] == 1.0
    assert table["mean_data_burst_packets"] == 100.0
    assert len(table["adaptive_modes"]) == 6
    assert len(protocols) == 6
