"""Benchmark / regeneration of Figure 11: voice packet loss rate vs traffic load.

The paper's Fig. 11 has six panels — {without, with} request queue crossed
with Nd ∈ {0, 10, 20} background data users — each plotting the voice packet
loss rate of the six protocols against the number of voice users.  Each
benchmark below regenerates one panel (at reduced scale by default; see
``benchmarks/bench_utils.py`` for the scaling knobs), prints the series, and
asserts the qualitative shape the paper reports:

* CHARISMA has the lowest loss of all protocols at the highest load, and
  essentially zero loss at light load;
* D-TDMA/VR (adaptive PHY, blind scheduling) never does worse than
  D-TDMA/FR (fixed PHY) by more than statistical noise;
* RMAV is the most loss-prone protocol at the highest load (its single
  competitive slot destabilises first).
"""

import pytest

from benchmarks.bench_utils import (
    loss_at_highest_load,
    print_figure,
    run_figure,
)

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

PANELS = ["fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f"]


@pytest.mark.parametrize("panel", PANELS)
def test_bench_fig11_voice_loss(benchmark, sweep_cache, panel):
    sweeps = benchmark.pedantic(
        run_figure, args=(panel, sweep_cache), rounds=1, iterations=1
    )
    print_figure(panel, sweeps)

    charisma = loss_at_highest_load(sweeps, "charisma")
    fixed_rate = loss_at_highest_load(sweeps, "dtdma_fr")
    adaptive_rate = loss_at_highest_load(sweeps, "dtdma_vr")
    rmav = loss_at_highest_load(sweeps, "rmav")
    everyone = {p: loss_at_highest_load(sweeps, p) for p in sweeps}

    # CHARISMA wins (ties allowed within a small tolerance for short runs).
    assert charisma <= min(everyone.values()) + 0.01
    # The adaptive PHY never hurts relative to the identical fixed-rate MAC.
    assert adaptive_rate <= fixed_rate + 0.02
    # RMAV's single competitive slot makes it the most fragile design.
    assert rmav >= max(charisma, adaptive_rate) - 1e-9
    # Light-load CHARISMA loss is negligible (the paper's "almost no loss").
    assert sweeps["charisma"].series("voice_loss_rate")[0] < 0.005
