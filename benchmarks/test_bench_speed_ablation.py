"""Benchmark / regeneration of the Section 5.3.3 mobile-speed study.

The paper reports that CHARISMA's performance is essentially unchanged from
10 to 50 km/h and degrades only slightly (less than about 5 %) at 80 km/h,
because the CSI refresh mechanism keeps the estimates the scheduler relies on
from going stale.  This benchmark sweeps the population's mobile speed for
CHARISMA at a fixed integrated voice/data load and prints loss, throughput
and delay per speed.
"""

import pytest

from benchmarks.bench_utils import (
    bench_duration_s,
    print_figure,
    run_figure,
    sweep_values_for,
)

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow


def test_bench_speed_ablation(benchmark, sweep_cache):
    sweeps = benchmark.pedantic(
        run_figure, args=("speed_ablation", sweep_cache), rounds=1, iterations=1
    )
    print_figure("speed_ablation", sweeps)

    charisma = sweeps["charisma"]
    losses = charisma.series("voice_loss_rate")
    throughputs = charisma.series("data_throughput_per_frame")
    speeds = charisma.values

    print(f"speeds swept (km/h): {speeds}; measured {bench_duration_s():.1f}s per point")

    # The protocol keeps voice within (or very close to) the 1% QoS limit at
    # every speed in the swept range.
    assert max(losses) < 0.03
    # Throughput at the highest speed stays within ~20% of the slowest-speed
    # throughput (the paper reports a <5% drop at full statistical scale; the
    # scaled-down benchmark allows a wider noise margin).
    if throughputs[0] > 0:
        degradation = (throughputs[0] - throughputs[-1]) / throughputs[0]
        assert degradation < 0.2
