"""Benchmark / regeneration of the Section 5.2 data QoS-capacity comparison.

The paper evaluates data service quality through the (delay, per-user
throughput) pair and reports that, at the (1 s, 0.25 packets/frame) operating
point, CHARISMA's capacity is roughly 1.5x that of D-TDMA/VR and about 3x
that of RAMA and DRMA.  This benchmark runs the corresponding QoS-capacity
search for each protocol (scaled down by default) and prints the capacities
and the CHARISMA-relative ratios.
"""

import pytest

from benchmarks.bench_utils import BENCH_SCALE, PARAMS
from repro.analysis.capacity import data_qos_capacity

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

PROTOCOLS = ["charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav"]

SEARCH = dict(
    n_voice=10,
    lower=10,
    upper=190,
    step=30,
    duration_s=1.25 * BENCH_SCALE,
    warmup_s=0.6 * BENCH_SCALE,
    seed=5,
)


def run_capacity_study():
    return {
        protocol: data_qos_capacity(protocol, PARAMS, **SEARCH).capacity
        for protocol in PROTOCOLS
    }


def test_bench_capacity_data(benchmark):
    capacities = benchmark.pedantic(run_capacity_study, rounds=1, iterations=1)

    print()
    print("==== Section 5.2: data users supported at the (1 s, 0.25 pkt/frame) "
          "QoS point ====")
    reference = max(capacities["charisma"], 1)
    print(f"{'protocol':<10} {'capacity':>9} {'vs CHARISMA':>12}")
    for protocol in PROTOCOLS:
        ratio = capacities[protocol] / reference
        print(f"{protocol:<10} {capacities[protocol]:>9} {ratio:>11.2f}x")

    # Shape checks: CHARISMA leads, the adaptive-PHY baseline is second, the
    # fixed-rate and single-slot designs trail far behind.
    assert capacities["charisma"] >= max(capacities.values()) - SEARCH["step"] // 4
    assert capacities["charisma"] >= capacities["rama"]
    assert capacities["charisma"] >= capacities["drma"]
    assert capacities["rmav"] <= capacities["charisma"]
