"""Benchmark / regeneration of Figure 5: a sample of the combined channel fading.

Generates a two-second composite fading trace (fast Rayleigh fading on
log-normal shadowing) at the paper's 50 km/h operating point, prints its
summary statistics, and checks the two time scales the paper highlights: a
coherence time of roughly 10 ms for the fast component and a fluctuation
time scale of the order of a second for the shadowing.
"""

import numpy as np

from benchmarks.bench_utils import PARAMS
from repro.channel import CompositeChannel, DopplerModel, JakesFading

TRACE_SECONDS = 2.0
SAMPLE_INTERVAL_S = 0.001


def generate_trace():
    channel = CompositeChannel(
        DopplerModel(speed_kmh=PARAMS.mobile_speed_kmh),
        sample_interval_s=SAMPLE_INTERVAL_S,
        rng=np.random.default_rng(5),
        shadow_std_db=PARAMS.shadow_std_db,
        shadow_decorrelation_s=PARAMS.shadow_decorrelation_s,
        mean_snr_db=PARAMS.mean_snr_db,
    )
    n = int(TRACE_SECONDS / SAMPLE_INTERVAL_S)
    composite = channel.trace(n)
    jakes = JakesFading(
        DopplerModel(speed_kmh=PARAMS.mobile_speed_kmh).doppler_hz,
        n_oscillators=32,
        rng=np.random.default_rng(6),
    ).trace(TRACE_SECONDS, SAMPLE_INTERVAL_S)
    return composite, jakes


def test_bench_fig5_channel_trace(benchmark):
    composite, jakes = benchmark.pedantic(generate_trace, rounds=1, iterations=1)
    composite_db = 20.0 * np.log10(composite)

    doppler = DopplerModel(speed_kmh=PARAMS.mobile_speed_kmh)
    print()
    print("==== Figure 5: sample of combined channel fading ====")
    print(f"mobile speed          : {doppler.speed_kmh:.0f} km/h")
    print(f"Doppler spread        : {doppler.doppler_hz:.1f} Hz")
    print(f"coherence time        : {doppler.coherence_time_s * 1e3:.1f} ms")
    print(f"trace length          : {TRACE_SECONDS:.1f} s at {SAMPLE_INTERVAL_S*1e3:.0f} ms samples")
    print(f"median level          : {np.median(composite_db):6.1f} dB")
    print(f"deepest fade          : {composite_db.min():6.1f} dB")
    print(f"90th percentile level : {np.percentile(composite_db, 90):6.1f} dB")
    deciles = " ".join(f"{v:5.1f}" for v in np.percentile(composite_db, range(10, 100, 10)))
    print(f"decile levels (dB)    : {deciles}")

    # Paper-shape checks: ~100 Hz Doppler -> ~10 ms coherence, Rayleigh-like
    # deep fades well below the median, unit-ish mean power of the fast part.
    assert 90.0 < doppler.doppler_hz < 110.0
    assert 8e-3 < doppler.coherence_time_s < 12e-3
    assert composite_db.min() < np.median(composite_db) - 10.0
    assert 0.7 < float(np.mean(jakes**2)) < 1.3

    # Fast fading decorrelates over ~tens of ms; shadowing persists: the
    # lag-1ms autocorrelation must far exceed the lag-100ms one.
    def autocorr(x, lag):
        return float(np.corrcoef(x[:-lag], x[lag:])[0, 1])

    assert autocorr(composite, 1) > autocorr(composite, 100)
