"""Benchmark / regeneration of Figure 13: data access delay vs traffic load.

Six panels mirroring Figure 12 (the same simulations viewed through the delay
metric; the session-wide cache in ``bench_utils.run_figure`` means the runs
are not repeated).  The paper's qualitative findings asserted here: CHARISMA
has the lowest delay, the fixed-rate FCFS baselines queue up dramatically as
the load grows, and the delay ranking is consistent with the throughput
ranking of Figure 12.
"""

import pytest

from benchmarks.bench_utils import (
    print_figure,
    run_figure,
    series_at_highest_load,
)

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

PANELS = ["fig13a", "fig13b", "fig13c", "fig13d", "fig13e", "fig13f"]
METRIC = "data_delay_s"


@pytest.mark.parametrize("panel", PANELS)
def test_bench_fig13_data_delay(benchmark, sweep_cache, panel):
    sweeps = benchmark.pedantic(
        run_figure, args=(panel, sweep_cache), rounds=1, iterations=1
    )
    print_figure(panel, sweeps)

    charisma = series_at_highest_load(sweeps, "charisma", METRIC)
    adaptive_rate = series_at_highest_load(sweeps, "dtdma_vr", METRIC)
    fixed_rate = series_at_highest_load(sweeps, "dtdma_fr", METRIC)
    drma = series_at_highest_load(sweeps, "drma", METRIC)

    # CHARISMA's delay at high load is the lowest (small tolerance for noise).
    others = [series_at_highest_load(sweeps, p, METRIC) for p in sweeps if p != "charisma"]
    assert charisma <= min(others) * 1.2 + 0.01
    # The channel-adaptive PHY helps even without CSI scheduling.
    assert adaptive_rate <= fixed_rate * 1.2 + 0.01
    # The fixed-rate FCFS baselines accumulate queueing delay at high load.
    assert fixed_rate > charisma
    assert drma > charisma
    # CHARISMA's delay stays within the paper's QoS operating point (1 s) over
    # the swept range.
    assert max(sweeps["charisma"].series(METRIC)) < 1.0
