"""Design-choice ablations of CHARISMA (reproduction extension).

The paper motivates three design elements — the CSI term of the priority
metric, the CSI polling of backlogged requests, and the base-station request
queue — qualitatively.  This benchmark quantifies each by running CHARISMA
with the element disabled, on the same workload and seed, and comparing
against the full protocol:

* ``no_csi_term``: the priority weights' ``alpha`` set to zero, so requests
  are ranked by urgency/service class only (the scheduler is channel-blind,
  like the baselines, though outage deferral still applies);
* ``no_polling``: stale backlog CSI is never refreshed;
* ``no_queue``: requests that get no slots are dropped instead of queued.
"""

import numpy as np

import pytest

from benchmarks.bench_utils import BENCH_SCALE, PARAMS
from repro.config import PriorityWeights
from repro.core.charisma import CharismaProtocol
from repro.mac.registry import build_modem
from repro.sim.engine import UplinkSimulationEngine
from repro.sim.scenario import Scenario

#: Full sweep benchmarks are long; deselect with ``-m "not slow"``.
pytestmark = pytest.mark.slow

SCENARIO = Scenario(
    protocol="charisma",
    n_voice=140,
    n_data=30,
    use_request_queue=True,
    duration_s=1.5 * BENCH_SCALE,
    warmup_s=0.75 * BENCH_SCALE,
    seed=13,
)


def _run_variant(name: str) -> dict:
    params = PARAMS
    scenario = SCENARIO
    protocol = None
    if name == "no_csi_term":
        params = PARAMS.with_overrides(
            priority=PriorityWeights(alpha_voice=0.0, alpha_data=0.0)
        )
    elif name == "no_queue":
        scenario = SCENARIO.with_overrides(use_request_queue=False)
    if name == "no_polling":
        rng = np.random.default_rng(scenario.seed)
        protocol = CharismaProtocol(
            params, build_modem("charisma", params), rng,
            use_request_queue=True, enable_csi_polling=False,
        )
    engine = UplinkSimulationEngine(scenario, params, protocol=protocol)
    result = engine.run()
    return {
        "voice_loss_rate": result.voice.loss_rate,
        "data_throughput_per_frame": result.data.throughput_packets_per_frame,
        "data_delay_s": result.data.mean_delay_s,
    }


VARIANTS = ("full", "no_csi_term", "no_polling", "no_queue")


def run_ablation():
    return {name: _run_variant(name) for name in VARIANTS}


def test_bench_ablation_design(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    print()
    print("==== CHARISMA design-choice ablations ====")
    print(f"{'variant':<12} {'voice loss':>11} {'data thr':>9} {'data delay':>11}")
    for name in VARIANTS:
        row = results[name]
        print(f"{name:<12} {row['voice_loss_rate']:>11.4f} "
              f"{row['data_throughput_per_frame']:>9.2f} "
              f"{row['data_delay_s']:>10.3f}s")

    full = results["full"]
    # Disabling a design element never improves the headline voice metric by
    # more than noise, and the full design stays within the voice QoS target
    # on this workload.
    assert full["voice_loss_rate"] <= 0.02
    for name in ("no_csi_term", "no_polling", "no_queue"):
        assert results[name]["voice_loss_rate"] >= full["voice_loss_rate"] - 0.01
    # Channel-blind ranking must not beat the CSI-ranked allocator on data
    # service either.
    assert results["no_csi_term"]["data_throughput_per_frame"] <= (
        full["data_throughput_per_frame"] * 1.1 + 0.5
    )
