#!/usr/bin/env python3
"""Mobile-speed sensitivity of CHARISMA (the paper's Section 5.3.3 study).

CHARISMA's gains rely on CSI estimates staying valid between the request
phase and the transmission phase.  At higher mobile speeds the channel
decorrelates faster, so estimates age more quickly and the CSI polling
mechanism has to work harder.  The paper reports that performance is
essentially unchanged from 10 to 50 km/h and degrades by less than ~5 % at
80 km/h; this example measures the same sweep (at reduced scale) and also
shows D-TDMA/VR for reference (it never consults CSI, so speed barely
matters to it beyond the channel statistics themselves).

Run with::

    python examples/speed_sensitivity.py
"""

from repro import Scenario, SimulationParameters, run_simulation

SPEEDS_KMH = (10, 30, 50, 65, 80)


def run_at_speed(protocol: str, speed_kmh: float, params: SimulationParameters):
    scenario = Scenario(
        protocol=protocol,
        n_voice=60,
        n_data=10,
        use_request_queue=True,
        duration_s=4.0,
        warmup_s=2.0,
        seed=17,
        mobile_speed_kmh=speed_kmh,
    )
    return run_simulation(scenario, params)


def main() -> None:
    params = SimulationParameters()
    print("speed   protocol    voice loss   data thr (pkt/frame)   data delay")
    print("-----   ---------   ----------   --------------------   ----------")
    baselines = {}
    for protocol in ("charisma", "dtdma_vr"):
        for speed in SPEEDS_KMH:
            result = run_at_speed(protocol, speed, params)
            print(f"{speed:3d} km/h  {protocol:9s}   {result.voice_loss_rate:10.4%}   "
                  f"{result.data_throughput:20.2f}   {result.data_delay_s * 1e3:7.1f} ms")
            baselines.setdefault(protocol, result.data_throughput)
        reference = baselines[protocol]
        final = run_at_speed(protocol, SPEEDS_KMH[-1], params).data_throughput
        if reference > 0:
            change = (final - reference) / reference
            print(f"        {protocol:9s}   throughput change 10->80 km/h: {change:+.1%}\n")


if __name__ == "__main__":
    main()
