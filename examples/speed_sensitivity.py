#!/usr/bin/env python3
"""Mobile-speed sensitivity of CHARISMA (the paper's Section 5.3.3 study).

CHARISMA's gains rely on CSI estimates staying valid between the request
phase and the transmission phase.  At higher mobile speeds the channel
decorrelates faster, so estimates age more quickly and the CSI polling
mechanism has to work harder.  The paper reports that performance is
essentially unchanged from 10 to 50 km/h and degrades by less than ~5 % at
80 km/h; this example measures the same sweep (at reduced scale) and also
shows D-TDMA/VR for reference (it never consults CSI, so speed barely
matters to it beyond the channel statistics themselves).

The sweep is one declarative grid — (charisma, dtdma_vr) × speed — executed
through :func:`repro.api.run`.

Run with::

    python examples/speed_sensitivity.py
"""

from repro import SimulationParameters
from repro.api import ExperimentSpec, SweepAxis, run
from repro.sim.scenario import Scenario

SPEEDS_KMH = (10.0, 30.0, 50.0, 65.0, 80.0)


def main() -> None:
    params = SimulationParameters()
    spec = ExperimentSpec(
        protocols=("charisma", "dtdma_vr"),
        base_scenario=Scenario(
            protocol="charisma",
            n_voice=60,
            n_data=10,
            use_request_queue=True,
            duration_s=4.0,
            warmup_s=2.0,
            seed=17,
        ),
        axes=(SweepAxis("mobile_speed_kmh", SPEEDS_KMH),),
        params=params,
        name="speed-sensitivity",
    )
    results = run(spec)

    print("speed   protocol    voice loss   data thr (pkt/frame)   data delay")
    print("-----   ---------   ----------   --------------------   ----------")
    for (protocol,), subset in results.group_by("protocol").items():
        for record in subset:
            result = record.result
            speed = record["mobile_speed_kmh"]
            print(f"{int(speed):3d} km/h  {protocol:9s}   "
                  f"{result.voice_loss_rate:10.4%}   "
                  f"{result.data_throughput:20.2f}   "
                  f"{result.data_delay_s * 1e3:7.1f} ms")
        throughputs = subset.series("data_throughput_per_frame")
        if throughputs[0] > 0:
            change = (throughputs[-1] - throughputs[0]) / throughputs[0]
            print(f"        {protocol:9s}   throughput change "
                  f"{int(SPEEDS_KMH[0])}->{int(SPEEDS_KMH[-1])} km/h: {change:+.1%}\n")


if __name__ == "__main__":
    main()
