#!/usr/bin/env python3
"""Tour of the unified experiment API (:mod:`repro.api`).

The paper's artefacts are all *families* of runs — protocol × population ×
seed × parameter grids.  This walkthrough covers the three layers the API
splits that into:

1. **Declare** the grid with :class:`~repro.api.ExperimentSpec` and
   :class:`~repro.api.SweepAxis` — any ``Scenario`` or
   ``SimulationParameters`` field is sweepable, cross-products compose, and
   every point is replicated over the spec's seeds.  Expansion is
   deterministic and hashable, so the same spec always names the same runs.
2. **Execute** it with :func:`~repro.api.run` — serially, across worker
   processes with :class:`~repro.api.ParallelExecutor`, or let the facade's
   heuristic decide.  Executors are interchangeable: same spec, same
   results, whatever the backend.
3. **Query** the returned :class:`~repro.api.ResultSet` — ``filter`` /
   ``group_by`` / ``aggregate`` (mean ± Student-t CI across seed
   replicates), export with ``to_records`` / ``to_csv`` / ``to_json``, or
   drop back to the legacy ``SweepResult`` tables with
   ``to_sweep_results``.
4. **Cache & resume** with ``run(spec, cache_dir=...)`` — every finished
   point is persisted under its content hash as it completes, so re-running
   an identical spec simulates nothing and a killed sweep resumes where it
   stopped.  ``python -m repro cache stats --cache-dir DIR`` inspects the
   store; :class:`~repro.api.AsyncExecutor` adds work-stealing per-point
   dispatch for heterogeneous grids.

Run with::

    python examples/experiment_api_tour.py
"""

import tempfile

from repro.analysis.tables import format_comparison_table
from repro.api import (
    AsyncExecutor,
    CachingExecutor,
    ExperimentSpec,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
    SweepAxis,
    run,
)
from repro.config import SimulationParameters
from repro.sim.scenario import Scenario


def main() -> None:
    # ------------------------------------------------------------ 1. declare
    spec = ExperimentSpec(
        protocols=("charisma", "dtdma_vr", "rama"),
        base_scenario=Scenario(
            protocol="charisma",
            n_voice=0,
            n_data=5,
            use_request_queue=True,
            duration_s=1.0,
            warmup_s=0.5,
        ),
        axes=(
            SweepAxis("n_voice", (20, 60)),
            # Any SimulationParameters field works too, e.g. the mean SNR:
            SweepAxis("mean_snr_db", (22.0, 28.5)),
        ),
        seeds=(0, 1, 2),
        name="api-tour",
    )
    print("spec:", spec.describe())
    points = spec.expand()
    print(f"expands to {len(points)} runs; first 2 hashes:",
          [p.run_hash() for p in points[:2]])
    assert spec.expand() == points, "expansion is deterministic"

    # ------------------------------------------------------------ 2. execute
    def progress(done: int, total: int) -> None:
        if done in (1, total // 2, total):
            print(f"  progress: {done}/{total}")

    results = run(spec, executor=SerialExecutor(), progress=progress)

    # Executors are interchangeable; a process pool returns the exact same
    # ResultSet (shared parameters are shipped to each worker only once).
    parallel = run(spec, executor=ParallelExecutor(n_workers=2))
    assert parallel.to_records() == results.to_records()
    print("serial and parallel execution agree on all",
          len(results), "runs")

    # -------------------------------------------------------------- 3. query
    # Mean voice loss ± 95 % CI across the three seed replicates, per
    # (protocol, load) cell at the reference SNR:
    print("\nvoice loss, mean ± CI over 3 seeds (mean SNR 28.5 dB):")
    reference = results.filter(mean_snr_db=28.5)
    for row in reference.aggregate(["voice_loss_rate"],
                                   by=("protocol", "n_voice")):
        coords = dict(row.group)
        print(f"  {coords['protocol']:9s} Nv={coords['n_voice']:<3d} "
              f"{row.mean:8.4%} ± {row.ci_half_width:.4%}  (n={row.n})")

    # Slicing back to the legacy table formatter for one sub-figure:
    sweeps = reference.filter(seed=0).to_sweep_results("n_voice")
    print()
    print(format_comparison_table(sweeps, "voice_loss_rate",
                                  title="voice loss, seed 0 (legacy view)"))

    # Flat records for pandas / CSV / JSON pipelines:
    records = results.to_records()
    print(f"\n{len(records)} flat records; keys: {', '.join(list(records[0])[:6])}, ...")
    csv_head = results.to_csv().splitlines()[0]
    print("csv header:", csv_head[:72], "...")

    # ----------------------------------------------------- 4. cache & resume
    # Every RunPoint has a stable content hash, so results can be cached on
    # disk: the first cached run simulates everything, an identical re-run
    # simulates *nothing*, and a killed sweep resumes from what finished.
    with tempfile.TemporaryDirectory(prefix="repro-tour-") as cache_dir:
        print(f"\ncached run into {cache_dir}:")
        cold = CachingExecutor(ResultStore(cache_dir), SerialExecutor())
        cached_results = run(spec, executor=cold)
        print(f"  cold: {cold.misses} simulated, {cold.hits} from cache")

        warm = CachingExecutor(ResultStore(cache_dir), SerialExecutor())
        rerun_results = run(spec, executor=warm)
        print(f"  warm: {warm.misses} simulated, {warm.hits} from cache")
        assert warm.misses == 0, "identical spec must be 100% cache hits"
        assert rerun_results.to_records() == cached_results.to_records()

        # The same directory works straight from the facade (and the CLI:
        # `python -m repro run --cache DIR`, `python -m repro cache stats
        # --cache-dir DIR`):
        facade_results = run(spec, cache_dir=cache_dir)
        assert facade_results.to_records() == cached_results.to_records()
        stats = ResultStore(cache_dir).stats()
        print(f"  store: {stats.n_results} results in {stats.n_shards} "
              f"shards, {stats.total_bytes} bytes")

    # Heterogeneous grids (point costs spanning orders of magnitude) load-
    # balance better with per-point work-stealing dispatch than with static
    # chunks; results are identical either way.
    stealing = run(spec, executor=AsyncExecutor(n_workers=2))
    assert stealing.to_records() == results.to_records()
    print("work-stealing execution agrees with serial on all "
          f"{len(stealing)} runs")


if __name__ == "__main__":
    main()
