#!/usr/bin/env python3
"""Protocol shoot-out: all six protocols on the same integrated voice/data cell.

Reproduces, at laptop scale, the qualitative comparison behind the paper's
Figs. 11-13: the same traffic mix and channel realisation is offered to
CHARISMA and to the five baselines (D-TDMA/VR, D-TDMA/FR, DRMA, RAMA, RMAV),
with and without the base-station request queue, and the three headline
metrics are tabulated side by side.

Run with::

    python examples/protocol_shootout.py [n_voice] [n_data]
"""

import sys

from repro import SimulationParameters, available_protocols
from repro.analysis.tables import format_comparison_table
from repro.sim.runner import run_protocol_comparison
from repro.sim.scenario import Scenario

#: Report protocols in the paper's own order.
PROTOCOL_ORDER = ["charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav"]


def main() -> None:
    n_voice = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    n_data = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    params = SimulationParameters()
    assert set(PROTOCOL_ORDER) == set(available_protocols())

    for use_queue in (False, True):
        queue_label = "WITH request queue" if use_queue else "WITHOUT request queue"
        base = Scenario(
            protocol="charisma",
            n_voice=0,
            n_data=n_data,
            use_request_queue=use_queue,
            duration_s=4.0,
            warmup_s=2.0,
            seed=7,
        )
        print(f"\n=== {queue_label}  (Nd = {n_data}) ===")
        sweeps = run_protocol_comparison(
            PROTOCOL_ORDER,
            [max(2, n_voice // 2), n_voice],
            parameter="n_voice",
            base_scenario=base,
            params=params,
        )
        print(format_comparison_table(
            sweeps, "voice_loss_rate",
            title="voice packet loss rate vs number of voice users"))
        print()
        print(format_comparison_table(
            sweeps, "data_throughput_per_frame",
            title="data throughput (packets/frame)"))
        print()
        print(format_comparison_table(
            sweeps, "data_delay_s", title="data access delay (seconds)"))


if __name__ == "__main__":
    main()
