#!/usr/bin/env python3
"""Protocol shoot-out: all six protocols on the same integrated voice/data cell.

Reproduces, at laptop scale, the qualitative comparison behind the paper's
Figs. 11-13: the same traffic mix and channel realisation is offered to
CHARISMA and to the five baselines (D-TDMA/VR, D-TDMA/FR, DRMA, RAMA, RMAV),
with and without the base-station request queue, and the three headline
metrics are tabulated side by side.

The whole family of runs is declared as one
:class:`repro.api.ExperimentSpec` — protocols × queue setting × load — and
executed with a single :func:`repro.api.run` call; the queryable
:class:`~repro.api.ResultSet` is then sliced per queue setting for the
legacy table formatter.

Run with::

    python examples/protocol_shootout.py [n_voice] [n_data]
"""

import sys

from repro import SimulationParameters, available_protocols
from repro.analysis.tables import format_comparison_table
from repro.api import ExperimentSpec, SweepAxis, run
from repro.sim.scenario import Scenario

#: Report protocols in the paper's own order.
PROTOCOL_ORDER = ("charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav")


def main() -> None:
    n_voice = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    n_data = int(sys.argv[2]) if len(sys.argv) > 2 else 20
    params = SimulationParameters()
    assert set(PROTOCOL_ORDER) == set(available_protocols())

    loads = sorted({max(2, n_voice // 2), n_voice})
    spec = ExperimentSpec(
        protocols=PROTOCOL_ORDER,
        base_scenario=Scenario(
            protocol="charisma",
            n_voice=0,
            n_data=n_data,
            duration_s=4.0,
            warmup_s=2.0,
            seed=7,
        ),
        axes=(
            SweepAxis("use_request_queue", (False, True)),
            SweepAxis("n_voice", loads),
        ),
        params=params,
        name="protocol-shootout",
    )
    print(f"Running {spec.n_runs} simulations (spec {spec.spec_hash()}) ...")
    results = run(spec)

    for use_queue in (False, True):
        queue_label = "WITH request queue" if use_queue else "WITHOUT request queue"
        print(f"\n=== {queue_label}  (Nd = {n_data}) ===")
        sweeps = results.filter(use_request_queue=use_queue).to_sweep_results("n_voice")
        print(format_comparison_table(
            sweeps, "voice_loss_rate",
            title="voice packet loss rate vs number of voice users"))
        print()
        print(format_comparison_table(
            sweeps, "data_throughput_per_frame",
            title="data throughput (packets/frame)"))
        print()
        print(format_comparison_table(
            sweeps, "data_delay_s", title="data access delay (seconds)"))


if __name__ == "__main__":
    main()
