#!/usr/bin/env python3
"""Capacity planning: how many users can each protocol admit at the QoS target?

This example reproduces the narrative capacity numbers of Sections 5.1/5.2 at
a reduced scale: for each protocol it searches for

* the largest number of *voice* users whose packet loss stays within 1 %, and
* the largest number of *data* users meeting the (1 s delay, 0.25 packets
  per frame per user) QoS operating point,

with and without the base-station request queue.  A cell operator would use
exactly this loop to dimension admission control.

Run with::

    python examples/capacity_planning.py [--quick]
"""

import sys

from repro import SimulationParameters
from repro.analysis.capacity import data_qos_capacity, voice_capacity

PROTOCOLS = ["charisma", "dtdma_vr", "dtdma_fr", "drma", "rama", "rmav"]


def main() -> None:
    quick = "--quick" in sys.argv
    params = SimulationParameters()
    duration = 2.0 if quick else 5.0
    upper = 120 if quick else 200

    print("Voice capacity at the 1% packet-loss threshold")
    print("protocol    no-queue   with-queue")
    print("---------   --------   ----------")
    for protocol in PROTOCOLS:
        row = []
        for use_queue in (False, True):
            estimate = voice_capacity(
                protocol, params,
                use_request_queue=use_queue,
                lower=20, upper=upper, step=40,
                duration_s=duration, warmup_s=1.5, seed=11,
            )
            row.append(estimate.capacity)
        print(f"{protocol:9s}   {row[0]:8d}   {row[1]:10d}")

    print()
    print("Data capacity at the (1 s, 0.25 pkt/frame/user) QoS point (no queue)")
    print("protocol    capacity")
    print("---------   --------")
    for protocol in PROTOCOLS:
        estimate = data_qos_capacity(
            protocol, params,
            n_voice=10,
            lower=10, upper=upper, step=40,
            duration_s=duration, warmup_s=1.5, seed=11,
        )
        print(f"{protocol:9s}   {estimate.capacity:8d}")


if __name__ == "__main__":
    main()
