#!/usr/bin/env python3
"""Tour of the multi-beam constellation layer (:mod:`repro.constellation`).

The paper's world is one uplink cell with at most 180 terminals.  This
walkthrough scales it out to a sharded spot-beam constellation on one
machine, covering the four contracts the layer ships with:

1. **Degenerate case** — a 1-beam constellation is *bit-identical* to the
   plain :class:`~repro.sim.scenario.Scenario` path in parity RNG mode:
   beam 0's streams use the classic empty spawn-key derivation and the
   uncoupled runner advances whole phases through the same ``run_frames``
   chunking as ``engine.run()``.
2. **Coupling** — beams interact only at macro-block boundaries: idle
   voice terminals *hand over* by swapping state with an idle peer slot
   (every counter conserved over the pair), and co-channel beams (same
   ``beam % reuse_factor`` group) fold each other's busy load into their
   channel as a frequency-reuse SNR penalty.
3. **Determinism** — handover decisions are drawn serially from one
   dedicated child stream between blocks, so the worker-thread count is a
   pure performance knob: threaded and serial runs are identical.
4. **Scale** — 100 beams × 100 terminals (the ISSUE's 10k-terminal demo)
   in fast RNG mode with macro-stepping, aggregate frames/sec printed.

Run with::

    python examples/constellation_tour.py
"""

from repro.config import SimulationParameters
from repro.constellation import (
    ConstellationScenario,
    run_constellation,
)
from repro.obs.clock import now
from repro.sim.runner import run_simulation
from repro.sim.scenario import Scenario

PARAMS = SimulationParameters()


def degenerate_case() -> None:
    # ------------------------------------------------- 1. degenerate case
    shared = dict(
        protocol="rama", n_voice=12, n_data=3, use_request_queue=True,
        duration_s=0.6, warmup_s=0.2, seed=7, macro_frames=16,
    )
    merged = run_constellation(
        ConstellationScenario(n_beams=1, **shared), PARAMS
    ).merged
    plain = run_simulation(Scenario(**shared), PARAMS)
    assert merged.voice == plain.voice
    assert merged.data == plain.data
    assert merged.mac == plain.mac
    print("1-beam constellation == plain Scenario, bit for bit "
          f"(voice loss {merged.voice.loss_rate:.4%})")


def coupled_constellation() -> None:
    # --------------------------------------------------------- 2. coupling
    scenario = ConstellationScenario(
        protocol="charisma",
        n_beams=6,
        n_voice=20, n_data=6,          # per beam -> 156 terminals total
        duration_s=1.0, warmup_s=0.2, seed=9,
        macro_frames=8,
        handover_rate=0.05,            # idle-terminal migration per block
        coupling_db=3.0,               # reuse-interference strength
        reuse_factor=3,                # co-channel groups {0,3} {1,4} {2,5}
    )
    outcome = run_constellation(scenario, PARAMS)
    print(f"\n{scenario.n_beams} coupled beams "
          f"({scenario.n_terminals} terminals): "
          f"{outcome.handovers} handovers, merged voice loss "
          f"{outcome.merged.voice.loss_rate:.4%}")
    for beam, result in enumerate(outcome.beams):
        print(f"  beam {beam}: loss {result.voice.loss_rate:8.4%}  "
              f"throughput {result.data.throughput_packets_per_frame:6.3f} "
              f"pkt/frame")
    # The merged result is the exact column-sum of the per-beam results.
    assert outcome.merged.voice.generated == sum(
        b.voice.generated for b in outcome.beams
    )

    # ------------------------------------------------------ 3. determinism
    serial = run_constellation(scenario, PARAMS, n_workers=1)
    threaded = run_constellation(scenario, PARAMS, n_workers=4)
    assert serial.merged == threaded.merged
    assert serial.handovers == threaded.handovers
    print("serial and 4-worker runs identical "
          f"({serial.handovers} handovers either way)")


def scale_demo() -> None:
    # ------------------------------------------------------------ 4. scale
    scenario = ConstellationScenario(
        protocol="rmav",
        n_beams=100,
        n_voice=80, n_data=20,         # per beam -> 10 000 terminals
        duration_s=0.25, warmup_s=0.05, seed=1,
        rng_mode="fast",
        macro_frames=64,
    )
    start = now()
    outcome = run_constellation(scenario, PARAMS)
    elapsed = now() - start
    frames = (
        scenario.warmup_frames(PARAMS) + scenario.measured_frames(PARAMS)
    ) * scenario.n_beams
    print(f"\n{scenario.n_beams} beams x "
          f"{scenario.terminals_per_beam} terminals "
          f"({scenario.n_terminals} total): "
          f"{frames / elapsed:,.0f} aggregate frames/sec "
          f"on {outcome.n_workers} worker(s)")


def main() -> None:
    degenerate_case()
    coupled_constellation()
    scale_demo()


if __name__ == "__main__":
    main()
