#!/usr/bin/env python3
"""Quickstart: simulate one cell running CHARISMA and print its metrics.

This is the smallest useful end-to-end use of the library:

* build the paper's default simulation parameters (Table 1),
* describe a scenario (protocol, voice/data population, request queue, seed),
* run it and inspect the three metrics the paper reports — voice packet loss
  rate, data throughput and data access delay — plus a few MAC-layer
  statistics.

Run with::

    python examples/quickstart.py

For families of runs (protocol / load / seed grids) see
``examples/experiment_api_tour.py`` and :mod:`repro.api` — ``run_simulation``
is the single-run primitive the experiment API builds on.
"""

from repro import Scenario, SimulationParameters, run_simulation


def main() -> None:
    params = SimulationParameters()
    scenario = Scenario(
        protocol="charisma",
        n_voice=60,            # voice calls in the cell
        n_data=10,             # bursty file-transfer users
        use_request_queue=True,
        duration_s=5.0,        # measured time (after warm-up)
        warmup_s=2.0,
        seed=42,
    )

    print(f"Simulating {scenario.label()} ...")
    result = run_simulation(scenario, params)

    voice = result.voice
    data = result.data
    mac = result.mac
    print("\n--- voice ---")
    print(f"generated packets   : {voice.generated}")
    print(f"loss rate (P_loss)  : {voice.loss_rate:.4%}  "
          f"(dropping {voice.dropping_rate:.4%}, errors {voice.error_rate:.4%})")
    print(f"meets 1% QoS limit  : {voice.meets_quality(params.voice_loss_threshold)}")

    print("\n--- data ---")
    print(f"generated packets   : {data.generated}")
    print(f"throughput          : {data.throughput_packets_per_frame:.2f} packets/frame "
          f"({data.throughput_packets_per_second:.0f} packets/s)")
    print(f"mean access delay   : {data.mean_delay_s * 1e3:.1f} ms "
          f"(95th percentile {data.p95_delay_s * 1e3:.1f} ms)")

    print("\n--- MAC ---")
    print(f"slot utilisation    : {mac.slot_utilisation:.2%}")
    print(f"collisions per frame: {mac.collision_rate:.3f}")
    print(f"mean queue length   : {mac.mean_queue_length:.2f} requests")


if __name__ == "__main__":
    main()
