#!/usr/bin/env python3
"""Explore the substrates: fading channel traces and the adaptive PHY staircase.

The MAC-level results of the paper rest on two substrates that are worth
inspecting on their own:

* the composite fading channel (Fig. 5): fast Rayleigh fluctuations with a
  ~10 ms coherence time riding on log-normal shadowing that drifts over
  seconds;
* the 6-mode adaptive physical layer (Fig. 7): constant-BER adaptation
  thresholds, and the normalised-throughput staircase as a function of CSI.

This example prints a textual rendering of both (no plotting dependencies).

Run with::

    python examples/channel_and_phy_exploration.py
"""

import numpy as np

from repro import SimulationParameters
from repro.channel import CompositeChannel, DopplerModel
from repro.phy import AdaptiveModem, ModeTable


def render_trace(values_db, width=60, lo=-30.0, hi=10.0) -> str:
    """Render a dB trace as a crude column of ASCII bars."""
    lines = []
    for i, value in enumerate(values_db):
        filled = int(np.clip((value - lo) / (hi - lo), 0.0, 1.0) * width)
        lines.append(f"{i * 10:5d} ms |{'#' * filled:<{width}}| {value:6.1f} dB")
    return "\n".join(lines)


def main() -> None:
    params = SimulationParameters()

    # ----------------------------------------------------------- Fig. 5 style
    print("=== Composite channel trace (50 km/h, one sample every 10 ms) ===")
    channel = CompositeChannel(
        DopplerModel(speed_kmh=params.mobile_speed_kmh),
        sample_interval_s=0.010,
        rng=np.random.default_rng(2),
        shadow_std_db=params.shadow_std_db,
        shadow_decorrelation_s=params.shadow_decorrelation_s,
        mean_snr_db=params.mean_snr_db,
    )
    trace = channel.trace(40)  # 400 ms of channel
    trace_db = 20.0 * np.log10(trace)
    print(render_trace(trace_db))
    print(f"\ndeepest fade: {trace_db.min():.1f} dB, "
          f"median level: {np.median(trace_db):.1f} dB")

    # ----------------------------------------------------------- Fig. 7 style
    print("\n=== Adaptive PHY mode table (constant-BER thresholds) ===")
    table = ModeTable(
        throughputs=params.mode_throughputs,
        target_ber=params.target_ber,
        reference_throughput=params.reference_throughput,
    )
    print(f"{'mode':>4} {'bits/symbol':>12} {'SNR threshold':>14} {'packets/slot':>13}")
    for row in table.describe():
        print(f"{row['mode']:>4} {row['throughput_bits_per_symbol']:>12.1f} "
              f"{row['snr_threshold_db']:>11.1f} dB {row['packets_per_slot']:>13}")

    modem = AdaptiveModem(table, mean_snr_db=params.mean_snr_db,
                          packet_size_bits=params.packet_size_bits)
    print("\n=== Normalised throughput vs CSI amplitude (Fig. 7b staircase) ===")
    for amplitude in (0.01, 0.03, 0.06, 0.1, 0.2, 0.4, 0.8, 1.5, 3.0):
        throughput = float(modem.throughput(amplitude))
        ber = modem.instantaneous_ber(amplitude)
        state = "outage" if modem.in_outage(amplitude) else f"mode throughput {throughput:.1f}"
        print(f"amplitude {amplitude:5.2f}  ->  {state:<22}  BER {ber:.2e}")


if __name__ == "__main__":
    main()
